package pattern

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

func rowEq(pos int, v string) Tuple {
	return MustTuple([]int{pos}, []Cell{EqStr(v)})
}

func TestTableauMarksAnyRow(t *testing.T) {
	tb := NewTableau(rowEq(0, "a"), rowEq(0, "b"))
	if !tb.Marks(relation.StringTuple("a")) || !tb.Marks(relation.StringTuple("b")) {
		t.Error("tableau must mark tuples matching any row")
	}
	if tb.Marks(relation.StringTuple("c")) {
		t.Error("tableau must not mark non-matching tuples")
	}
}

func TestTableauDeduplicates(t *testing.T) {
	tb := NewTableau(rowEq(0, "a"), rowEq(0, "a"))
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want deduplicated 1", tb.Len())
	}
	tb.Add(rowEq(0, "a"))
	if tb.Len() != 1 {
		t.Fatal("Add must deduplicate against existing rows")
	}
	tb.Add(rowEq(0, "b"))
	if tb.Len() != 2 {
		t.Fatal("distinct rows must both be kept")
	}
}

func TestTableauMatchingRows(t *testing.T) {
	tb := NewTableau(
		rowEq(0, "a"),
		MustTuple([]int{1}, []Cell{Any}),
	)
	rows := tb.MatchingRows(relation.StringTuple("a", "x"))
	if len(rows) != 2 {
		t.Fatalf("MatchingRows = %v", rows)
	}
	rows = tb.MatchingRows(relation.StringTuple("z", "x"))
	if len(rows) != 1 || rows[0] != 1 {
		t.Fatalf("MatchingRows = %v", rows)
	}
}

func TestTableauConcretePositiveFlags(t *testing.T) {
	conc := NewTableau(rowEq(0, "a"))
	if !conc.IsConcrete() || !conc.IsPositive() {
		t.Error("constant-only tableau should be concrete and positive")
	}
	neg := NewTableau(MustTuple([]int{0}, []Cell{NeqStr("a")}))
	if neg.IsConcrete() || neg.IsPositive() {
		t.Error("negation tableau is neither concrete nor positive")
	}
	wild := NewTableau(MustTuple([]int{0}, []Cell{Any}))
	if wild.IsConcrete() || !wild.IsPositive() {
		t.Error("wildcard tableau is positive but not concrete")
	}
}

func TestTableauCloneIndependence(t *testing.T) {
	tb := NewTableau(rowEq(0, "a"))
	c := tb.Clone()
	c.Add(rowEq(0, "b"))
	if tb.Len() != 1 {
		t.Error("Clone shares row storage")
	}
}

func TestTableauFormat(t *testing.T) {
	s := relation.StringSchema("R", "AC")
	tb := NewTableau(rowEq(0, "020"), rowEq(0, "131"))
	got := tb.Format(s)
	if !strings.Contains(got, "020") || !strings.Contains(got, "131") {
		t.Errorf("Format = %q", got)
	}
}
