// Package pattern implements the pattern language of the paper (§2):
// pattern cells that are a constant a (condition x = a), a negated constant
// ā (condition x ≠ a) or the wildcard _ (no condition); pattern tuples over
// a list of attributes; and pattern tableaus. The match relation t ≈ tp is
// the basis of rule applicability and of regions (Z, Tc).
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
)

// CellKind discriminates the three pattern-cell forms.
type CellKind uint8

// Pattern cell forms.
const (
	Wildcard CellKind = iota // "_" — imposes no condition
	Const                    // "a" — requires x = a
	NotConst                 // "ā" — requires x ≠ a
)

// Cell is one pattern condition.
type Cell struct {
	Kind CellKind
	Val  relation.Value // meaningful for Const and NotConst
}

// Any is the wildcard cell.
var Any = Cell{Kind: Wildcard}

// Eq builds a constant cell requiring equality with v.
func Eq(v relation.Value) Cell { return Cell{Kind: Const, Val: v} }

// Neq builds a negated cell requiring inequality with v.
func Neq(v relation.Value) Cell { return Cell{Kind: NotConst, Val: v} }

// EqStr is Eq over a string constant.
func EqStr(s string) Cell { return Eq(relation.String(s)) }

// NeqStr is Neq over a string constant.
func NeqStr(s string) Cell { return Neq(relation.String(s)) }

// Matches reports whether value v satisfies the cell's condition.
func (c Cell) Matches(v relation.Value) bool {
	switch c.Kind {
	case Wildcard:
		return true
	case Const:
		return v.Equal(c.Val)
	default:
		return !v.Equal(c.Val)
	}
}

// IsConcrete reports whether the cell pins a single value (Const).
func (c Cell) IsConcrete() bool { return c.Kind == Const }

// String renders the cell: constants verbatim, negations as !v, wildcard _.
func (c Cell) String() string {
	switch c.Kind {
	case Wildcard:
		return "_"
	case Const:
		return c.Val.String()
	default:
		return "!" + c.Val.String()
	}
}

// Equal reports structural equality of cells.
func (c Cell) Equal(o Cell) bool { return c.Kind == o.Kind && c.Val.Equal(o.Val) }

// Tuple is a pattern tuple tp[Xp]: an ordered list of distinct attribute
// positions with one cell per position. The empty tuple (no attributes)
// matches every data tuple, mirroring tp = () in the paper's examples.
type Tuple struct {
	positions []int
	cells     []Cell
}

// NewTuple builds a pattern tuple. Positions must be distinct and each must
// pair with one cell.
func NewTuple(positions []int, cells []Cell) (Tuple, error) {
	if len(positions) != len(cells) {
		return Tuple{}, fmt.Errorf("pattern: %d positions but %d cells", len(positions), len(cells))
	}
	seen := map[int]bool{}
	for _, p := range positions {
		if p < 0 {
			return Tuple{}, fmt.Errorf("pattern: negative attribute position %d", p)
		}
		if seen[p] {
			return Tuple{}, fmt.Errorf("pattern: duplicate attribute position %d", p)
		}
		seen[p] = true
	}
	return Tuple{
		positions: append([]int(nil), positions...),
		cells:     append([]Cell(nil), cells...),
	}, nil
}

// MustTuple is NewTuple that panics on error; for fixtures.
func MustTuple(positions []int, cells []Cell) Tuple {
	t, err := NewTuple(positions, cells)
	if err != nil {
		panic(err)
	}
	return t
}

// Empty is the pattern tuple over no attributes; it matches everything.
func Empty() Tuple { return Tuple{} }

// Len returns the number of constrained attributes.
func (p Tuple) Len() int { return len(p.positions) }

// Positions returns the constrained attribute positions (copy).
func (p Tuple) Positions() []int { return append([]int(nil), p.positions...) }

// CellAt returns the i-th (position, cell) pair.
func (p Tuple) CellAt(i int) (int, Cell) { return p.positions[i], p.cells[i] }

// CellFor returns the cell constraining attribute position pos, with
// ok=false when the pattern does not mention pos (i.e. implicit wildcard).
func (p Tuple) CellFor(pos int) (Cell, bool) {
	for i, q := range p.positions {
		if q == pos {
			return p.cells[i], true
		}
	}
	return Any, false
}

// Matches implements t ≈ tp: every constrained attribute of t satisfies its
// cell. Attributes not mentioned are unconstrained.
func (p Tuple) Matches(t relation.Tuple) bool {
	for i, pos := range p.positions {
		if !p.cells[i].Matches(t[pos]) {
			return false
		}
	}
	return true
}

// Normalize removes wildcard cells, yielding the normal form of §2: the
// result constrains the same tuples with no "_" entries.
func (p Tuple) Normalize() Tuple {
	var q Tuple
	for i, pos := range p.positions {
		if p.cells[i].Kind != Wildcard {
			q.positions = append(q.positions, pos)
			q.cells = append(q.cells, p.cells[i])
		}
	}
	return q
}

// IsConcrete reports whether every cell is a constant (§4's "concrete Tc"
// special case, which makes consistency/coverage PTIME — Theorem 4).
func (p Tuple) IsConcrete() bool {
	for _, c := range p.cells {
		if c.Kind != Const {
			return false
		}
	}
	return true
}

// IsPositive reports whether no cell is a negation (§4's "positive Tc").
func (p Tuple) IsPositive() bool {
	for _, c := range p.cells {
		if c.Kind == NotConst {
			return false
		}
	}
	return true
}

// WithCell returns a copy of p where attribute pos is constrained by c,
// replacing an existing cell or appending a new pair. Used by the
// applicable-rule refinement of §5.2 (deriving ϕ+ from ϕ and t[Z]).
func (p Tuple) WithCell(pos int, c Cell) Tuple {
	q := Tuple{
		positions: append([]int(nil), p.positions...),
		cells:     append([]Cell(nil), p.cells...),
	}
	for i, existing := range q.positions {
		if existing == pos {
			q.cells[i] = c
			return q
		}
	}
	q.positions = append(q.positions, pos)
	q.cells = append(q.cells, c)
	return q
}

// Restrict projects the pattern onto the given positions, dropping cells on
// attributes outside the set.
func (p Tuple) Restrict(keep relation.AttrSet) Tuple {
	var q Tuple
	for i, pos := range p.positions {
		if keep.Has(pos) {
			q.positions = append(q.positions, pos)
			q.cells = append(q.cells, p.cells[i])
		}
	}
	return q
}

// AttrSet returns the set of constrained attribute positions.
func (p Tuple) AttrSet() relation.AttrSet {
	return relation.NewAttrSet(p.positions...)
}

// Equal reports semantic-structural equality after sorting by position.
func (p Tuple) Equal(o Tuple) bool {
	if len(p.positions) != len(o.positions) {
		return false
	}
	type pc struct {
		pos  int
		cell Cell
	}
	collect := func(t Tuple) []pc {
		out := make([]pc, len(t.positions))
		for i := range t.positions {
			out[i] = pc{t.positions[i], t.cells[i]}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
		return out
	}
	a, b := collect(p), collect(o)
	for i := range a {
		if a[i].pos != b[i].pos || !a[i].cell.Equal(b[i].cell) {
			return false
		}
	}
	return true
}

// Key returns a canonical string encoding of the pattern (sorted by
// position) for deduplication in tableaus and caches.
func (p Tuple) Key() string {
	idx := make([]int, len(p.positions))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return p.positions[idx[a]] < p.positions[idx[b]] })
	var b strings.Builder
	for _, i := range idx {
		fmt.Fprintf(&b, "%d=%d:%s\x1f", p.positions[i], p.cells[i].Kind, p.cells[i].Val.Encode())
	}
	return b.String()
}

// String renders the pattern with attribute names from the schema, e.g.
// "tp[type, AC] = (1, !0800)".
func (p Tuple) String() string {
	if len(p.positions) == 0 {
		return "()"
	}
	var names, vals []string
	for i, pos := range p.positions {
		names = append(names, fmt.Sprintf("#%d", pos))
		vals = append(vals, p.cells[i].String())
	}
	return fmt.Sprintf("[%s] = (%s)", strings.Join(names, ", "), strings.Join(vals, ", "))
}

// Format renders the pattern with attribute names resolved via schema.
func (p Tuple) Format(schema *relation.Schema) string {
	if len(p.positions) == 0 {
		return "()"
	}
	var names, vals []string
	for i, pos := range p.positions {
		names = append(names, schema.Attr(pos).Name)
		vals = append(vals, p.cells[i].String())
	}
	return fmt.Sprintf("[%s] = (%s)", strings.Join(names, ", "), strings.Join(vals, ", "))
}
