package pattern

import (
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func TestCellMatches(t *testing.T) {
	v := relation.String("020")
	w := relation.String("131")
	if !Any.Matches(v) || !Any.Matches(relation.Null) {
		t.Error("wildcard must match everything")
	}
	if !Eq(v).Matches(v) || Eq(v).Matches(w) {
		t.Error("Eq semantics wrong")
	}
	if Neq(v).Matches(v) || !Neq(v).Matches(w) {
		t.Error("Neq semantics wrong")
	}
	// ā on Null: Null ≠ a holds
	if !Neq(v).Matches(relation.Null) {
		t.Error("Neq must match Null when constant is non-null")
	}
}

func TestCellRendering(t *testing.T) {
	if Any.String() != "_" {
		t.Errorf("wildcard renders %q", Any.String())
	}
	if EqStr("x").String() != "x" {
		t.Errorf("const renders %q", EqStr("x").String())
	}
	if NeqStr("x").String() != "!x" {
		t.Errorf("negation renders %q", NeqStr("x").String())
	}
}

func TestNewTupleValidation(t *testing.T) {
	if _, err := NewTuple([]int{0, 0}, []Cell{Any, Any}); err == nil {
		t.Error("duplicate positions must be rejected")
	}
	if _, err := NewTuple([]int{0}, []Cell{Any, Any}); err == nil {
		t.Error("length mismatch must be rejected")
	}
	if _, err := NewTuple([]int{-1}, []Cell{Any}); err == nil {
		t.Error("negative position must be rejected")
	}
}

func TestTupleMatchesPaperExample(t *testing.T) {
	// tp3[type, AC] = (1, !0800): type = 1 and AC ≠ 0800 (rule ϕ3, Example 3).
	p := MustTuple([]int{2, 0}, []Cell{EqStr("1"), NeqStr("0800")})
	match := relation.StringTuple("131", "x", "1")
	if !p.Matches(match) {
		t.Error("should match type=1, AC=131")
	}
	if p.Matches(relation.StringTuple("0800", "x", "1")) {
		t.Error("must reject AC=0800")
	}
	if p.Matches(relation.StringTuple("131", "x", "2")) {
		t.Error("must reject type=2")
	}
}

func TestEmptyTupleMatchesEverything(t *testing.T) {
	p := Empty()
	if !p.Matches(relation.StringTuple("a", "b")) || p.Len() != 0 {
		t.Error("empty pattern must match all tuples")
	}
}

func TestNormalizeDropsWildcards(t *testing.T) {
	p := MustTuple([]int{0, 1, 2}, []Cell{Any, EqStr("x"), Any})
	n := p.Normalize()
	if n.Len() != 1 {
		t.Fatalf("normalized length %d", n.Len())
	}
	pos, c := n.CellAt(0)
	if pos != 1 || !c.Equal(EqStr("x")) {
		t.Fatalf("normalized cell (%d,%v)", pos, c)
	}
	// semantics preserved (property check over small random tuples)
	f := func(a, b, c2 string) bool {
		tu := relation.StringTuple(a, b, c2)
		return p.Matches(tu) == n.Matches(tu)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsConcreteAndPositive(t *testing.T) {
	conc := MustTuple([]int{0}, []Cell{EqStr("a")})
	wild := MustTuple([]int{0}, []Cell{Any})
	neg := MustTuple([]int{0}, []Cell{NeqStr("a")})
	if !conc.IsConcrete() || wild.IsConcrete() || neg.IsConcrete() {
		t.Error("IsConcrete wrong")
	}
	if !conc.IsPositive() || !wild.IsPositive() || neg.IsPositive() {
		t.Error("IsPositive wrong")
	}
}

func TestWithCellReplaceAndAppend(t *testing.T) {
	p := MustTuple([]int{0}, []Cell{EqStr("old")})
	q := p.WithCell(0, EqStr("new"))
	r := p.WithCell(3, EqStr("added"))
	if c, _ := q.CellFor(0); !c.Equal(EqStr("new")) {
		t.Error("WithCell replace failed")
	}
	if c, _ := p.CellFor(0); !c.Equal(EqStr("old")) {
		t.Error("WithCell mutated receiver")
	}
	if c, ok := r.CellFor(3); !ok || !c.Equal(EqStr("added")) {
		t.Error("WithCell append failed")
	}
}

func TestRestrict(t *testing.T) {
	p := MustTuple([]int{0, 1, 2}, []Cell{EqStr("a"), EqStr("b"), EqStr("c")})
	q := p.Restrict(relation.NewAttrSet(0, 2))
	if q.Len() != 2 {
		t.Fatalf("restricted len %d", q.Len())
	}
	if _, ok := q.CellFor(1); ok {
		t.Error("position 1 should be dropped")
	}
}

func TestTupleEqualOrderIndependent(t *testing.T) {
	a := MustTuple([]int{0, 1}, []Cell{EqStr("x"), Any})
	b := MustTuple([]int{1, 0}, []Cell{Any, EqStr("x")})
	if !a.Equal(b) {
		t.Error("Equal must be order-independent")
	}
	c := MustTuple([]int{0, 1}, []Cell{EqStr("y"), Any})
	if a.Equal(c) {
		t.Error("different cells must not be equal")
	}
	if a.Key() != b.Key() {
		t.Error("Key must be order-independent")
	}
	if a.Key() == c.Key() {
		t.Error("different patterns must have different keys")
	}
}

func TestCellForImplicitWildcard(t *testing.T) {
	p := MustTuple([]int{1}, []Cell{EqStr("v")})
	c, ok := p.CellFor(0)
	if ok || c.Kind != Wildcard {
		t.Error("unmentioned attribute should report implicit wildcard, ok=false")
	}
}

func TestFormatUsesSchemaNames(t *testing.T) {
	s := relation.StringSchema("R", "AC", "city")
	p := MustTuple([]int{0}, []Cell{EqStr("0800")})
	if got := p.Format(s); got != "[AC] = (0800)" {
		t.Errorf("Format = %q", got)
	}
	if Empty().Format(s) != "()" {
		t.Error("empty pattern formats as ()")
	}
}
