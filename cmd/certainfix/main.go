// Command certainfix repairs a CSV of input tuples against master data
// and editing rules — the data-monitoring tool of the paper, batch-style.
//
// The rules file uses the rule DSL preceded by two schema headers:
//
//	schema R: zip, ST, phn, ...
//	master Rm: zip, ST, phn, ...
//	rule h01: (zip ; zip) -> (ST ; ST) when zip != nil
//	...
//
// For each input tuple the tool treats the attributes named by -validated
// as assured correct, applies every certain fix (TransFix), and writes
// the repaired relation. With -suggest it instead prints, per tuple, the
// attributes the interactive framework would ask the user to validate
// next.
//
// Usage:
//
//	certainfix -rules hosp.rules -master hosp_master.csv \
//	           -input hosp_input.csv -validated id,mCode -out fixed.csv
//
// With -master-snapshot the tool reuses a columnar arena image across
// runs: an existing image is loaded (mmap + validate) instead of
// rebuilding master indexes from CSV; a missing one is built from
// -master and saved for the next run.
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/pkg/certainfix"
)

func main() {
	var (
		rulesPath   = flag.String("rules", "", "rules file (schema headers + rule DSL)")
		masterPath  = flag.String("master", "", "master relation CSV")
		inputPath   = flag.String("input", "", "input tuples CSV")
		outPath     = flag.String("out", "", "output CSV (default stdout)")
		validated   = flag.String("validated", "", "comma-separated attributes assured correct")
		suggestOut  = flag.Bool("suggest", false, "print next-suggestion per tuple instead of repairing")
		interactive = flag.Bool("interactive", false, "fix each tuple interactively on the terminal")
		workers     = flag.Int("workers", 0, "concurrent repair workers (0 = all CPUs)")
		shards      = flag.Int("shards", 0, "master index shards, built in parallel (0 = one per CPU)")
		masterDelta = flag.String("master-delta", "", "master-delta replay file applied before fixing (lines 'add,<cells...>' / 'del,<id>'; '---' publishes a batch)")
		snapshot    = flag.String("master-snapshot", "", "columnar master arena: load it when the file exists, else build from -master and save it")
	)
	flag.Parse()
	if *rulesPath == "" || *inputPath == "" {
		fatalf("-rules and -input are required")
	}
	if *masterPath == "" && *snapshot == "" {
		fatalf("-master is required (or -master-snapshot naming an existing image)")
	}

	r, rm, rules, err := loadRules(*rulesPath)
	if err != nil {
		fatalf("%v", err)
	}
	inputs, err := loadCSV(r, *inputPath)
	if err != nil {
		fatalf("%v", err)
	}
	sys, err := buildSystem(rules, rm, *masterPath, *snapshot, *shards)
	if err != nil {
		fatalf("%v", err)
	}
	if *masterDelta != "" {
		if err := replayMasterDeltas(sys, rm, *masterDelta); err != nil {
			fatalf("%v", err)
		}
	}

	var validatedPos []int
	if *validated != "" {
		for _, name := range strings.Split(*validated, ",") {
			p, ok := r.Pos(strings.TrimSpace(name))
			if !ok {
				fatalf("unknown validated attribute %q", name)
			}
			validatedPos = append(validatedPos, p)
		}
	} else if len(sys.Regions()) > 0 {
		validatedPos = sys.Regions()[0].Z
		var names []string
		for _, p := range validatedPos {
			names = append(names, r.Attr(p).Name)
		}
		fmt.Fprintf(os.Stderr, "certainfix: using best certain region, validating: %s\n", strings.Join(names, ", "))
	}

	if *interactive {
		if err := runInteractive(sys, inputs, *outPath); err != nil {
			fatalf("%v", err)
		}
		return
	}

	if *suggestOut {
		for i := 0; i < inputs.Len(); i++ {
			s := sys.Suggest(inputs.Tuple(i), validatedPos)
			var names []string
			for _, p := range s {
				names = append(names, r.Attr(p).Name)
			}
			fmt.Printf("tuple %d: validate %s\n", i, strings.Join(names, ", "))
		}
		return
	}

	fixedRel := certainfix.NewRelation(r)
	totalFixed := 0
	repairs := sys.RepairBatch(inputs.Tuples(), validatedPos, *workers)
	for i, rep := range repairs {
		fixed := rep.Tuple
		if rep.Err != nil {
			fmt.Fprintf(os.Stderr, "certainfix: tuple %d: %v (left unchanged)\n", i, rep.Err)
			fixed = inputs.Tuple(i).Clone()
		}
		totalFixed += len(rep.Fixed)
		fixedRel.MustAppend(fixed)
	}

	w := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := fixedRel.WriteCSV(bw); err != nil {
		fatalf("%v", err)
	}
	if err := bw.Flush(); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "certainfix: repaired %d cells across %d tuples\n", totalFixed, inputs.Len())
}

// buildSystem constructs the System: from the columnar arena image when
// snapshot names an existing file, otherwise from the master CSV — saving
// the freshly built snapshot to the snapshot path, if given, so the next
// run cold-starts by page-in instead of rebuild.
func buildSystem(rules *certainfix.Rules, rm *certainfix.Schema, masterPath, snapshot string, shards int) (*certainfix.System, error) {
	if snapshot != "" {
		if _, err := os.Stat(snapshot); err == nil {
			sys, err := certainfix.NewFromArena(rules, snapshot)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", snapshot, err)
			}
			fmt.Fprintf(os.Stderr, "certainfix: master loaded from arena %s\n", snapshot)
			return sys, nil
		}
	}
	if masterPath == "" {
		return nil, fmt.Errorf("-master is required when %s does not exist yet", snapshot)
	}
	masterRel, err := loadCSV(rm, masterPath)
	if err != nil {
		return nil, err
	}
	sys, err := certainfix.New(rules, masterRel, certainfix.WithShards(shards))
	if err != nil {
		return nil, err
	}
	if snapshot != "" {
		if err := sys.SaveMasterArena(snapshot); err != nil {
			return nil, fmt.Errorf("save %s: %w", snapshot, err)
		}
		fmt.Fprintf(os.Stderr, "certainfix: master arena saved to %s\n", snapshot)
	}
	return sys, nil
}

// replayMasterDeltas applies a master-delta file against the running
// system — the operational path for master corrections that previously
// required a full restart. The file is CSV (same quoting rules as the
// master CSV, '#' comments allowed); each record is either
//
//	add,<cell>,<cell>,...   append a master tuple (Rm order, CSV cells)
//	del,<id>                delete the master tuple with this id in the
//	                        current snapshot (swap-remove: the last tuple
//	                        takes the freed id)
//	---                     publish the accumulated batch as one epoch
//
// A trailing batch without '---' is published at EOF. Per published
// batch, the new epoch and master size are logged to stderr.
func replayMasterDeltas(sys *certainfix.System, rm *certainfix.Schema, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cr := csv.NewReader(bufio.NewReader(f))
	cr.FieldsPerRecord = -1 // record shapes vary by op
	cr.Comment = '#'

	var adds []certainfix.Tuple
	var dels []int
	publish := func() error {
		if len(adds) == 0 && len(dels) == 0 {
			return nil
		}
		epoch, err := sys.UpdateMaster(adds, dels)
		if err != nil {
			return fmt.Errorf("%s: publish delta: %w", path, err)
		}
		fmt.Fprintf(os.Stderr, "certainfix: master delta published: epoch %d, +%d/-%d tuples, |Dm| = %d\n",
			epoch, len(adds), len(dels), sys.MasterLen())
		adds, dels = nil, nil
		return nil
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		ln, _ := cr.FieldPos(0)
		switch rec[0] {
		case "---":
			if len(rec) != 1 {
				return fmt.Errorf("%s:%d: '---' takes no fields", path, ln)
			}
			if err := publish(); err != nil {
				return err
			}
		case "add":
			cells := rec[1:]
			if len(cells) != rm.Arity() {
				return fmt.Errorf("%s:%d: add needs %d cells, got %d", path, ln, rm.Arity(), len(cells))
			}
			adds = append(adds, certainfix.StringTuple(cells...))
		case "del":
			if len(rec) != 2 {
				return fmt.Errorf("%s:%d: del takes exactly one id", path, ln)
			}
			id, err := strconv.Atoi(rec[1])
			if err != nil {
				return fmt.Errorf("%s:%d: bad delete id %q: %w", path, ln, rec[1], err)
			}
			dels = append(dels, id)
		default:
			return fmt.Errorf("%s:%d: want 'add,...', 'del,<id>' or '---', got %q", path, ln, rec[0])
		}
	}
	return publish()
}

// loadRules parses the schema headers and the rule DSL (the shared
// format of certainfix.ParseRulesWithSchemas).
func loadRules(path string) (*certainfix.Schema, *certainfix.Schema, *certainfix.Rules, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, err
	}
	r, rm, rules, err := certainfix.ParseRulesWithSchemas(string(data))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, rm, rules, nil
}

func loadCSV(schema *certainfix.Schema, path string) (*certainfix.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return certainfix.ReadCSV(schema, bufio.NewReader(f))
}

// runInteractive fixes every input tuple through a terminal dialogue:
// each round shows the suggested attributes with their current values;
// the user confirms (empty line) or types corrected values.
func runInteractive(sys *certainfix.System, inputs *certainfix.Relation, outPath string) error {
	schema := sys.Schema()
	stdin := bufio.NewScanner(os.Stdin)
	fixedRel := certainfix.NewRelation(schema)

	for i := 0; i < inputs.Len(); i++ {
		fmt.Printf("\n--- tuple %d/%d: %v\n", i+1, inputs.Len(), inputs.Tuple(i))
		sess, err := sys.Begin(context.Background(), inputs.Tuple(i))
		if err != nil {
			return err
		}
		for !sess.Done() {
			attrs := sess.Suggested()
			cur := sess.Tuple()
			values := make([]certainfix.Value, len(attrs))
			fmt.Println("please confirm or correct:")
			for j, p := range attrs {
				fmt.Printf("  %s [%v]: ", schema.Attr(p).Name, cur[p])
				if !stdin.Scan() {
					return stdin.Err()
				}
				text := strings.TrimSpace(stdin.Text())
				if text == "" {
					values[j] = cur[p] // confirmed as-is
				} else {
					values[j] = certainfix.String(text)
				}
			}
			if err := sess.Provide(attrs, values); err != nil {
				return err
			}
			fmt.Printf("  -> %v\n", sess.Tuple())
		}
		fixedRel.MustAppend(sess.Result().Tuple)
	}

	w := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := fixedRel.WriteCSV(bw); err != nil {
		return err
	}
	return bw.Flush()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "certainfix: "+format+"\n", args...)
	os.Exit(1)
}
