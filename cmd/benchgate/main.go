// Command benchgate is the CI perf-regression gate: it parses `go test
// -bench` output and compares it against a checked-in BENCH_*.json
// baseline, failing (exit 1) when a benchmark's ns/op regresses beyond
// the tolerance or its allocs/op increases at all — the latter is what
// keeps the zero-allocation probe paths zero-allocation.
//
// Compare mode (CI):
//
//	go test -bench='...' -benchmem -benchtime=3x -run NONE . > bench.txt
//	benchgate -baseline BENCH_2026-07-29_pr5.json bench.txt more.txt
//
// Record mode (refreshing the baseline after an intentional change):
//
//	benchgate -record BENCH_new.json -title "PR 6: ..." -pr 6 bench.txt
//
// With no file arguments, bench output is read from stdin. Benchmarks in
// the baseline but absent from the input are skipped unless -strict;
// benchmarks in the input but not the baseline fail the gate unless
// -allow-new, which reports them without failing (record them into a
// baseline soon after). ns/op gating is one-sided — getting faster never
// fails — with the band sized by -tolerance (default ±30%, sized for
// -benchtime=3x noise on shared CI runners).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "", "BENCH_*.json baseline to gate against")
		tolerance    = flag.Float64("tolerance", 0.30, "allowed fractional ns/op regression (0.30 = +30%)")
		strict       = flag.Bool("strict", false, "fail when a baseline benchmark is missing from the input")
		allowNew     = flag.Bool("allow-new", false, "report benchmarks absent from the baseline without failing the gate")
		recordPath   = flag.String("record", "", "write a new baseline JSON from the input instead of gating")
		title        = flag.String("title", "", "baseline title metadata (record mode)")
		pr           = flag.Int("pr", 0, "baseline PR number metadata (record mode)")
		date         = flag.String("date", "", "baseline date metadata (record mode)")
	)
	flag.Parse()
	if (*baselinePath == "") == (*recordPath == "") {
		fatalf("exactly one of -baseline (compare) or -record is required")
	}

	meas, err := readInputs(flag.Args())
	if err != nil {
		fatalf("%v", err)
	}
	if len(meas) == 0 {
		fatalf("no benchmark lines found in input")
	}

	if *recordPath != "" {
		if err := WriteBaseline(*recordPath, *title, *pr, *date, meas); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "benchgate: recorded %d benchmarks to %s\n", len(meas), *recordPath)
		return
	}

	baseline, err := LoadBaseline(*baselinePath)
	if err != nil {
		fatalf("%v", err)
	}
	verdicts := Gate(baseline, meas, *tolerance)
	if !Report(os.Stdout, verdicts, *tolerance, *strict, *allowNew) {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL")
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchgate: ok (%d gated against %s, tolerance ±%.0f%%)\n",
		len(baseline), *baselinePath, *tolerance*100)
}

// readInputs parses bench output from the argument files — concatenated,
// so ParseBenchOutput's duplicate-merge policy (min ns/op, max allocs/op)
// is the single merge semantics — or stdin when none are given.
func readInputs(paths []string) (map[string]Measurement, error) {
	if len(paths) == 0 {
		return ParseBenchOutput(os.Stdin)
	}
	readers := make([]io.Reader, 0, len(paths)*2)
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		// A file that ends without a newline must not glue its last
		// bench line onto the next file's first.
		readers = append(readers, f, strings.NewReader("\n"))
	}
	return ParseBenchOutput(io.MultiReader(readers...))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(2)
}
