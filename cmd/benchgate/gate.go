package main

// Parsing and comparison logic for the CI perf-regression gate, separated
// from main so the unit tests drive it directly.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Measurement is one benchmark's observed numbers.
type Measurement struct {
	NsOp      float64
	BOp       float64
	AllocsOp  float64
	HasAllocs bool // -benchmem columns present
	Samples   int
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkProbeAlloc/hit-8   9303972   118.6 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// ParseBenchOutput extracts measurements from `go test -bench` output.
// The trailing -N GOMAXPROCS suffix is stripped from names. When a
// benchmark appears several times (-count, or several input files), the
// minimum ns/op is kept — the least-noise estimate — and the maximum
// allocs/op, the conservative choice for the no-new-allocations gate.
func ParseBenchOutput(r io.Reader) (map[string]Measurement, error) {
	out := map[string]Measurement{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name, rest := m[1], m[2]
		meas, ok := parseMetrics(rest)
		if !ok {
			continue
		}
		prev, seen := out[name]
		if !seen {
			meas.Samples = 1
			out[name] = meas
			continue
		}
		if meas.NsOp < prev.NsOp {
			prev.NsOp = meas.NsOp
		}
		if meas.HasAllocs {
			prev.HasAllocs = true
			if meas.AllocsOp > prev.AllocsOp {
				prev.AllocsOp = meas.AllocsOp
				prev.BOp = meas.BOp
			}
		}
		prev.Samples++
		out[name] = prev
	}
	return out, sc.Err()
}

// parseMetrics reads the "value unit" pairs after the iteration count.
func parseMetrics(rest string) (Measurement, bool) {
	fields := strings.Fields(rest)
	var meas Measurement
	ok := false
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Measurement{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			meas.NsOp = v
			ok = true
		case "B/op":
			meas.BOp = v
		case "allocs/op":
			meas.AllocsOp = v
			meas.HasAllocs = true
		}
	}
	return meas, ok
}

// BaselineEntry is one benchmark's recorded reference numbers (the
// BENCH_*.json "results" format shared with the per-PR bench records).
type BaselineEntry struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// baselineDoc is the checked-in BENCH_*.json shape; fields beyond results
// are descriptive metadata.
type baselineDoc struct {
	Date      string                   `json:"date,omitempty"`
	PR        int                      `json:"pr,omitempty"`
	Title     string                   `json:"title,omitempty"`
	Config    map[string]any           `json:"config,omitempty"`
	Results   map[string]BaselineEntry `json:"results"`
	Headlines map[string]string        `json:"headlines,omitempty"`
}

// LoadBaseline reads the results map of a BENCH_*.json file.
func LoadBaseline(path string) (map[string]BaselineEntry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc baselineDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Results) == 0 {
		return nil, fmt.Errorf("%s: no \"results\" in baseline", path)
	}
	return doc.Results, nil
}

// WriteBaseline records measurements as a BENCH_*.json document.
func WriteBaseline(path, title string, pr int, date string, meas map[string]Measurement) error {
	doc := baselineDoc{
		Date:    date,
		PR:      pr,
		Title:   title,
		Results: make(map[string]BaselineEntry, len(meas)),
	}
	for name, m := range meas {
		doc.Results[name] = BaselineEntry{NsOp: m.NsOp, BOp: m.BOp, AllocsOp: m.AllocsOp}
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Verdict is the outcome of gating one benchmark.
type Verdict struct {
	Name     string
	Base     BaselineEntry
	Current  Measurement
	Missing  bool    // in the baseline, absent from the input
	New      bool    // in the input, absent from the baseline
	NsDelta  float64 // (cur-base)/base
	NsFail   bool
	AllocsUp bool
}

// Gate compares measurements against the baseline: ns/op may drift up to
// tolerance (a fraction, e.g. 0.30) in either direction — only slowdowns
// beyond it fail — and allocs/op must not increase at all (the
// any-allocs-increase threshold; a 0-alloc benchmark that starts
// allocating always fails). Benchmarks in the input but absent from the
// baseline are reported New — Report fails them unless allowNew, so an
// unrecorded benchmark cannot slip past the gate silently; baseline
// entries absent from the input are reported Missing and fail only in
// strict mode (the caller's choice).
func Gate(baseline map[string]BaselineEntry, current map[string]Measurement, tolerance float64) []Verdict {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	verdicts := make([]Verdict, 0, len(names))
	for _, name := range names {
		base := baseline[name]
		v := Verdict{Name: name, Base: base}
		cur, ok := current[name]
		if !ok {
			v.Missing = true
			verdicts = append(verdicts, v)
			continue
		}
		v.Current = cur
		if base.NsOp > 0 {
			v.NsDelta = (cur.NsOp - base.NsOp) / base.NsOp
			v.NsFail = v.NsDelta > tolerance
		}
		v.AllocsUp = cur.HasAllocs && cur.AllocsOp > base.AllocsOp
		verdicts = append(verdicts, v)
	}
	extras := make([]string, 0)
	for name := range current {
		if _, known := baseline[name]; !known {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	for _, name := range extras {
		verdicts = append(verdicts, Verdict{Name: name, New: true, Current: current[name]})
	}
	return verdicts
}

// Report renders the verdicts and returns whether the gate passes.
// strict makes missing benchmarks fail; allowNew lets benchmarks without
// a baseline entry through (report-only) instead of failing them.
func Report(w io.Writer, verdicts []Verdict, tolerance float64, strict, allowNew bool) bool {
	pass := true
	for _, v := range verdicts {
		switch {
		case v.Missing:
			status := "SKIP"
			if strict {
				status = "FAIL"
				pass = false
			}
			fmt.Fprintf(w, "%-4s %-55s not in bench output\n", status, v.Name)
		case v.New:
			status := "NEW"
			if !allowNew {
				status = "FAIL"
				pass = false
			}
			fmt.Fprintf(w, "%-4s %-55s %9.1f ns/op, allocs %g — not in baseline (record it, or pass -allow-new)\n",
				status, v.Name, v.Current.NsOp, v.Current.AllocsOp)
		case v.NsFail && v.AllocsUp:
			pass = false
			fmt.Fprintf(w, "FAIL %-55s %9.1f ns/op vs %9.1f (%+.0f%% > ±%.0f%%), allocs %g vs %g\n",
				v.Name, v.Current.NsOp, v.Base.NsOp, v.NsDelta*100, tolerance*100, v.Current.AllocsOp, v.Base.AllocsOp)
		case v.NsFail:
			pass = false
			fmt.Fprintf(w, "FAIL %-55s %9.1f ns/op vs %9.1f baseline (%+.0f%%, tolerance ±%.0f%%)\n",
				v.Name, v.Current.NsOp, v.Base.NsOp, v.NsDelta*100, tolerance*100)
		case v.AllocsUp:
			pass = false
			fmt.Fprintf(w, "FAIL %-55s allocs/op rose %g -> %g (any increase fails)\n",
				v.Name, v.Base.AllocsOp, v.Current.AllocsOp)
		default:
			fmt.Fprintf(w, "ok   %-55s %9.1f ns/op vs %9.1f (%+.0f%%), allocs %g\n",
				v.Name, v.Current.NsOp, v.Base.NsOp, v.NsDelta*100, v.Current.AllocsOp)
		}
	}
	return pass
}
