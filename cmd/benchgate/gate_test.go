package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkProbeAlloc/hit-8         	 9303972	       118.6 ns/op	       0 B/op	       0 allocs/op
BenchmarkProbeAlloc/miss-uninterned-8 	28292818	        42.53 ns/op	       0 B/op	       0 allocs/op
BenchmarkSuggest/compiled         	  224366	      5329 ns/op	     432 B/op	       6 allocs/op
BenchmarkFig9aRecallTuple/hosp-8  	      37	  31808108 ns/op	         0.7000 recall_t_k1	         0.9533 recall_t_final
BenchmarkProbeAlloc/hit-8         	 9000000	       131.0 ns/op	       0 B/op	       1 allocs/op
PASS
ok  	repro	12.3s
`

func TestParseBenchOutput(t *testing.T) {
	meas, err := ParseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	hit, ok := meas["BenchmarkProbeAlloc/hit"]
	if !ok {
		t.Fatalf("hit benchmark missing (GOMAXPROCS suffix not stripped?): %v", meas)
	}
	// Duplicate lines: min ns/op, max allocs/op.
	if hit.NsOp != 118.6 || hit.AllocsOp != 1 || !hit.HasAllocs || hit.Samples != 2 {
		t.Fatalf("hit = %+v, want ns 118.6, allocs 1, 2 samples", hit)
	}
	sug := meas["BenchmarkSuggest/compiled"]
	if sug.NsOp != 5329 || sug.BOp != 432 || sug.AllocsOp != 6 {
		t.Fatalf("suggest = %+v", sug)
	}
	// Custom -benchmem-less metrics (ReportMetric columns) parse without
	// fabricating alloc data.
	fig := meas["BenchmarkFig9aRecallTuple/hosp"]
	if fig.NsOp != 31808108 || fig.HasAllocs {
		t.Fatalf("fig9 = %+v", fig)
	}
}

func gateOne(t *testing.T, base BaselineEntry, cur string, tolerance float64) Verdict {
	t.Helper()
	meas, err := ParseBenchOutput(strings.NewReader(cur))
	if err != nil {
		t.Fatal(err)
	}
	verdicts := Gate(map[string]BaselineEntry{"BenchmarkX/y": base}, meas, tolerance)
	if len(verdicts) != 1 {
		t.Fatalf("got %d verdicts", len(verdicts))
	}
	return verdicts[0]
}

func TestGateWithinTolerancePasses(t *testing.T) {
	v := gateOne(t, BaselineEntry{NsOp: 100, AllocsOp: 0},
		"BenchmarkX/y-4 100 125.0 ns/op 0 B/op 0 allocs/op\n", 0.30)
	if v.NsFail || v.AllocsUp || v.Missing {
		t.Fatalf("+25%% within ±30%% must pass: %+v", v)
	}
}

func TestGateNsRegressionFails(t *testing.T) {
	v := gateOne(t, BaselineEntry{NsOp: 100, AllocsOp: 0},
		"BenchmarkX/y-4 100 131.0 ns/op 0 B/op 0 allocs/op\n", 0.30)
	if !v.NsFail {
		t.Fatalf("+31%% must fail: %+v", v)
	}
}

func TestGateFasterAlwaysPasses(t *testing.T) {
	v := gateOne(t, BaselineEntry{NsOp: 100, AllocsOp: 0},
		"BenchmarkX/y-4 100 20.0 ns/op 0 B/op 0 allocs/op\n", 0.30)
	if v.NsFail || v.AllocsUp {
		t.Fatalf("-80%% must pass (one-sided gate): %+v", v)
	}
}

func TestGateAnyAllocIncreaseFails(t *testing.T) {
	// The 0-alloc benchmark allocating once is the regression the gate
	// exists for, even when ns/op is fine.
	v := gateOne(t, BaselineEntry{NsOp: 100, AllocsOp: 0},
		"BenchmarkX/y-4 100 99.0 ns/op 16 B/op 1 allocs/op\n", 0.30)
	if !v.AllocsUp || v.NsFail {
		t.Fatalf("0 -> 1 allocs must fail: %+v", v)
	}
	// Without -benchmem columns the alloc gate cannot fire.
	v = gateOne(t, BaselineEntry{NsOp: 100, AllocsOp: 0},
		"BenchmarkX/y-4 100 99.0 ns/op\n", 0.30)
	if v.AllocsUp {
		t.Fatalf("no allocs columns must not fire the alloc gate: %+v", v)
	}
}

func TestGateMissingAndStrict(t *testing.T) {
	verdicts := Gate(map[string]BaselineEntry{"BenchmarkGone": {NsOp: 10}}, map[string]Measurement{}, 0.3)
	var buf bytes.Buffer
	if !Report(&buf, verdicts, 0.3, false, false) {
		t.Fatalf("missing benchmark must pass without -strict:\n%s", buf.String())
	}
	buf.Reset()
	if Report(&buf, verdicts, 0.3, true, false) {
		t.Fatalf("missing benchmark must fail with -strict:\n%s", buf.String())
	}
}

func TestGateNewBenchmarkAndAllowNew(t *testing.T) {
	// One gated benchmark plus one the baseline has never seen: the new
	// one must fail the gate by default (it would otherwise never gate at
	// all) and pass — reported, not scored — under -allow-new.
	baseline := map[string]BaselineEntry{"BenchmarkX/y": {NsOp: 100}}
	meas, err := ParseBenchOutput(strings.NewReader(
		"BenchmarkX/y-4 100 99.0 ns/op 0 B/op 0 allocs/op\n" +
			"BenchmarkColdStartArena/Dm=100000-4 10 7000000 ns/op 0 B/op 9 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	verdicts := Gate(baseline, meas, 0.3)
	if len(verdicts) != 2 {
		t.Fatalf("got %d verdicts, want 2 (gated + new): %+v", len(verdicts), verdicts)
	}
	nv := verdicts[1]
	if !nv.New || nv.Name != "BenchmarkColdStartArena/Dm=100000" {
		t.Fatalf("new-benchmark verdict = %+v", nv)
	}
	var buf bytes.Buffer
	if Report(&buf, verdicts, 0.3, false, false) {
		t.Fatalf("unrecorded benchmark must fail without -allow-new:\n%s", buf.String())
	}
	buf.Reset()
	if !Report(&buf, verdicts, 0.3, false, true) {
		t.Fatalf("-allow-new must pass:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "NEW") {
		t.Fatalf("-allow-new must still report the benchmark:\n%s", buf.String())
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	meas, err := ParseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WriteBaseline(path, "round trip", 5, "2026-07-29", meas); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(meas) {
		t.Fatalf("round trip lost entries: %d vs %d", len(base), len(meas))
	}
	verdicts := Gate(base, meas, 0.0)
	var buf bytes.Buffer
	if !Report(&buf, verdicts, 0.0, true, false) {
		t.Fatalf("identical data must gate clean at zero tolerance:\n%s", buf.String())
	}
}
