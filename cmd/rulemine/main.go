// Command rulemine mines candidate editing rules from a master-data CSV
// and prints them in the rule DSL — the §7 future-work direction of the
// paper, packaged as a tool. The emitted rules can be reviewed, trimmed
// and fed to cmd/certainfix.
//
// Usage:
//
//	rulemine -master hosp_master.csv [-maxlhs 2] [-minsupport 8]
//
// The input schema is taken from the CSV header; the rules map each
// attribute to the master attribute of the same name.
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/pkg/certainfix"
)

func main() {
	var (
		masterPath = flag.String("master", "", "master relation CSV (header = schema)")
		maxLHS     = flag.Int("maxlhs", 2, "maximum lhs width")
		minSupport = flag.Int("minsupport", 8, "minimum distinct lhs keys")
	)
	flag.Parse()
	if *masterPath == "" {
		fatalf("-master is required")
	}

	f, err := os.Open(*masterPath)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	header, err := csv.NewReader(br).Read()
	if err != nil {
		fatalf("reading header: %v", err)
	}
	// Re-open: ReadCSV wants the header too.
	if _, err := f.Seek(0, 0); err != nil {
		fatalf("%v", err)
	}
	rm := certainfix.StringSchema("master", header...)
	rel, err := certainfix.ReadCSV(rm, bufio.NewReader(f))
	if err != nil {
		fatalf("%v", err)
	}
	r := certainfix.StringSchema("input", header...)

	rules, deps, err := certainfix.DiscoverRules(r, rel, certainfix.DiscoverOptions{
		MaxLHS: *maxLHS, MinSupport: *minSupport,
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("# %d editing rules mined from %s (|Dm| = %d)\n", rules.Len(), *masterPath, rel.Len())
	fmt.Printf("schema input: %s\n", strings.Join(header, ", "))
	fmt.Printf("master master: %s\n", strings.Join(header, ", "))
	for i, ru := range rules.Rules() {
		var lhs []string
		for _, p := range ru.LHS() {
			lhs = append(lhs, r.Attr(p).Name)
		}
		fmt.Printf("rule %s: (%s ; %s) -> (%s ; %s)  # support %d\n",
			ru.Name(), strings.Join(lhs, ", "), strings.Join(lhs, ", "),
			r.Attr(ru.RHS()).Name, r.Attr(ru.RHS()).Name, deps[i].Support)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rulemine: "+format+"\n", args...)
	os.Exit(1)
}
