// Command rulemine mines editing rules from a master-data CSV and prints
// them in the rule DSL — the §7 future-work direction of the paper,
// packaged as a tool. Mining runs on the sharded inverted-postings
// engine (internal/discover); the emitted rules can be reviewed, trimmed
// and fed to cmd/certainfix or cmd/certainfixd.
//
// Usage:
//
//	rulemine -master hosp_master.csv [-maxlhs 2] [-minsupport 8]
//	         [-minconf 0.9] [-loop] [-maxrounds 3] [-cleaned out.csv]
//
// The input schema is taken from the CSV header; the rules map each
// attribute to the master attribute of the same name.
//
// With -minconf below 1, mining tolerates dirty master data: a rule is
// kept when at least that fraction of tuples support it, and the emitted
// DSL carries the measured confidence as a trailing `weight` clause.
// With -loop the discover→fix→re-discover bootstrap loop runs instead of
// a single pass: mined dependencies majority-repair the master cells
// that violate them, mining repeats on the cleaned data, and -cleaned
// optionally writes the repaired master CSV — a dataset with no
// hand-written Σ bootstraps both its rules and a cleaner master from
// nothing (see certainfix.Discover).
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/pkg/certainfix"
)

func main() {
	var (
		masterPath = flag.String("master", "", "master relation CSV (header = schema)")
		maxLHS     = flag.Int("maxlhs", 2, "maximum lhs width")
		minSupport = flag.Int("minsupport", 8, "minimum distinct lhs keys")
		minConf    = flag.Float64("minconf", 1, "minimum confidence; below 1 mines weighted rules from dirty data")
		loop       = flag.Bool("loop", false, "run the discover→fix→re-discover bootstrap loop")
		maxRounds  = flag.Int("maxrounds", 3, "bootstrap loop rounds (with -loop)")
		cleanedOut = flag.String("cleaned", "", "write the loop-repaired master CSV here (with -loop)")
	)
	flag.Parse()
	if *masterPath == "" {
		fatalf("-master is required")
	}

	f, err := os.Open(*masterPath)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	header, err := csv.NewReader(br).Read()
	if err != nil {
		fatalf("reading header: %v", err)
	}
	// Re-open: ReadCSV wants the header too.
	if _, err := f.Seek(0, 0); err != nil {
		fatalf("%v", err)
	}
	rm := certainfix.StringSchema("master", header...)
	rel, err := certainfix.ReadCSV(rm, bufio.NewReader(f))
	if err != nil {
		fatalf("%v", err)
	}
	r := certainfix.StringSchema("input", header...)

	opts := certainfix.DiscoverOptions{
		MaxLHS: *maxLHS, MinSupport: *minSupport, MinConfidence: *minConf,
	}
	var (
		rules *certainfix.Rules
		deps  []certainfix.MinedDependency
	)
	if *loop {
		res, err := certainfix.Discover(r, rel, certainfix.DiscoverLoopOptions{
			Options: opts, MaxRounds: *maxRounds,
		})
		if err != nil {
			fatalf("%v", err)
		}
		rules, deps = res.Rules, res.Deps
		for _, rd := range res.Rounds {
			fmt.Fprintf(os.Stderr, "rulemine: round %d: %d deps, %d cells repaired, mean confidence %.4f\n",
				rd.Round, rd.Deps, rd.CellsRepaired, rd.MeanConfidence)
		}
		if *cleanedOut != "" {
			out, err := os.Create(*cleanedOut)
			if err != nil {
				fatalf("%v", err)
			}
			w := bufio.NewWriter(out)
			if err := res.Cleaned.WriteCSV(w); err != nil {
				fatalf("writing cleaned master: %v", err)
			}
			if err := w.Flush(); err != nil {
				fatalf("writing cleaned master: %v", err)
			}
			if err := out.Close(); err != nil {
				fatalf("writing cleaned master: %v", err)
			}
			fmt.Fprintf(os.Stderr, "rulemine: cleaned master written to %s\n", *cleanedOut)
		}
	} else {
		rules, deps, err = certainfix.DiscoverRules(r, rel, opts)
		if err != nil {
			fatalf("%v", err)
		}
	}

	fmt.Printf("# %d editing rules mined from %s (|Dm| = %d)\n", rules.Len(), *masterPath, rel.Len())
	fmt.Printf("schema input: %s\n", strings.Join(header, ", "))
	fmt.Printf("master master: %s\n", strings.Join(header, ", "))
	for i, ru := range rules.Rules() {
		var lhs []string
		for _, p := range ru.LHS() {
			lhs = append(lhs, r.Attr(p).Name)
		}
		// Evidence goes on its own comment line: the DSL has no trailing
		// comments, and the output must feed cmd/certainfix unedited.
		evidence := fmt.Sprintf("# support %d", deps[i].Support)
		if deps[i].Violations > 0 {
			evidence += fmt.Sprintf(", %d violations", deps[i].Violations)
		}
		fmt.Println(evidence)
		line := fmt.Sprintf("rule %s: (%s ; %s) -> (%s ; %s)",
			ru.Name(), strings.Join(lhs, ", "), strings.Join(lhs, ", "),
			r.Attr(ru.RHS()).Name, r.Attr(ru.RHS()).Name)
		if ru.Confidence() < 1 {
			line += fmt.Sprintf(" weight %.4g", ru.Confidence())
		}
		fmt.Println(line)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rulemine: "+format+"\n", args...)
	os.Exit(1)
}
