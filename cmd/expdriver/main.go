// Command expdriver regenerates every table and figure of the paper's
// evaluation (§6) on the synthetic HOSP/DBLP substrate and prints them as
// aligned text tables. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for a discussion of paper-vs-measured results.
//
// Usage:
//
//	expdriver [-experiment all|exp1|exp2|fig9|fig10|fig11|fig12|fixdump]
//	          [-dataset hosp|dblp|both] [-master N] [-tuples N] [-seed N]
//	          [-workers N] [-shards P] [-out FILE] [-master-snapshot FILE]
//	          [-update-batches N] [-wal-dir DIR]
//
// -update-batches evolves the generated master through N deterministic
// delta batches before fixing; with -wal-dir the batches run through the
// durable WAL + checkpoint lineage at that directory — the production
// write path — and the fixdump must be byte-identical to a memory-only
// run, which the CI scale smoke diffs.
//
// -master-snapshot reuses a columnar master arena image across runs: an
// existing image is loaded instead of rebuilding the master indexes, a
// missing one is saved after the build. Fix outputs are byte-identical
// either way; the CI scale smoke diffs rebuilt vs arena-loaded fixdumps.
//
// The defaults run a laptop-scale pass (|Dm| = 2000, |D| = 500) in a few
// seconds; raise -master/-tuples to approach the paper's 10K/10K setting.
//
// The fixdump experiment runs the full pipeline end to end — generate,
// build the sharded master, fix every tuple on -workers workers — and
// writes the repaired relation as CSV to -out. Its output is
// byte-identical for every -workers/-shards combination; the CI scale
// smoke diffs -shards 1 against -shards 8 at |Dm| = 100k.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/master"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run: all, exp1, exp2, fig9, fig10, fig11, fig12, fixdump")
		dataset    = flag.String("dataset", "both", "dataset: hosp, dblp or both")
		masterSize = flag.Int("master", 2000, "master relation size |Dm|")
		tuples     = flag.Int("tuples", 500, "input tuples |D|")
		seed       = flag.Int64("seed", 1, "generator seed")
		workers    = flag.Int("workers", 1, "batch-fix workers for accuracy experiments (fig12 latency always runs sequentially)")
		shards     = flag.Int("shards", 0, "master index shards, built in parallel (0 = one per CPU)")
		outPath    = flag.String("out", "", "output file for fixdump (default stdout)")
		snapshot   = flag.String("master-snapshot", "", "columnar master arena: load it when the file exists, else build and save it (fix results are identical either way)")
		updates    = flag.Int("update-batches", 0, "fixdump only: evolve the master through N deterministic delta batches before fixing")
		walDir     = flag.String("wal-dir", "", "fixdump only: apply the update batches through the durable WAL+checkpoint lineage at this directory")
	)
	flag.Parse()

	datasets := []string{"hosp", "dblp"}
	switch *dataset {
	case "both":
	case "hosp", "dblp":
		datasets = []string{*dataset}
	default:
		fatalf("unknown dataset %q", *dataset)
	}

	run := func(name string) bool { return *experiment == "all" || *experiment == name }

	if run("exp1") {
		t, err := experiments.Exp1RegionSizes(*seed, *masterSize)
		checkErr(err)
		t.Fprint(os.Stdout)
	}

	if *experiment == "fixdump" {
		if len(datasets) != 1 {
			fatalf("fixdump writes one relation; pick -dataset hosp or -dataset dblp")
		}
		ds := datasets[0]
		p := experiments.Params{Dataset: ds, Seed: *seed, MasterSize: *masterSize, Tuples: *tuples, Workers: *workers, Shards: *shards, MasterSnapshot: *snapshot, UpdateBatches: *updates, WALDir: *walDir}
		rel, err := experiments.FixedOutputs(p)
		checkErr(err)
		out := os.Stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			checkErr(err)
			out = f
		}
		checkErr(rel.WriteCSV(out))
		if *outPath != "" {
			checkErr(out.Close())
			fmt.Fprintf(os.Stderr, "expdriver: wrote %d fixed %s tuples to %s (|Dm|=%d, workers=%d, shards=%d)\n",
				rel.Len(), ds, *outPath, *masterSize, *workers, *shards)
		}
		return
	}

	for _, ds := range datasets {
		p := experiments.Params{Dataset: ds, Seed: *seed, MasterSize: *masterSize, Tuples: *tuples, Workers: *workers, Shards: *shards, MasterSnapshot: *snapshot}

		if run("exp2") {
			t, err := experiments.Exp2InitialSuggestion(p)
			checkErr(err)
			t.Fprint(os.Stdout)
		}
		if run("fig9") {
			t, err := experiments.Fig9(p)
			checkErr(err)
			t.Fprint(os.Stdout)
		}
		if run("fig10") {
			t, err := experiments.Fig10Sweep(p, "dup", []float64{0.1, 0.2, 0.3, 0.4, 0.5})
			checkErr(err)
			t.Fprint(os.Stdout)
			sizes := []float64{float64(*masterSize) / 2, float64(*masterSize), float64(*masterSize) * 3 / 2, float64(*masterSize) * 2, float64(*masterSize) * 5 / 2}
			t, err = experiments.Fig10Sweep(p, "master", sizes)
			checkErr(err)
			t.Fprint(os.Stdout)
			t, err = experiments.Fig10Sweep(p, "noise", []float64{0.1, 0.2, 0.3, 0.4, 0.5})
			checkErr(err)
			t.Fprint(os.Stdout)
		}
		if run("fig11") {
			t, err := experiments.Fig11Sweep(p, "dup", []float64{0.1, 0.2, 0.3, 0.4, 0.5})
			checkErr(err)
			t.Fprint(os.Stdout)
			sizes := []float64{float64(*masterSize) / 2, float64(*masterSize), float64(*masterSize) * 3 / 2, float64(*masterSize) * 2, float64(*masterSize) * 5 / 2}
			t, err = experiments.Fig11Sweep(p, "master", sizes)
			checkErr(err)
			t.Fprint(os.Stdout)
			t, err = experiments.Fig11Sweep(p, "noise", []float64{0.1, 0.2, 0.3, 0.4, 0.5})
			checkErr(err)
			t.Fprint(os.Stdout)
		}
		if run("fig12") {
			sizes := []int{*masterSize / 2, *masterSize, *masterSize * 3 / 2, *masterSize * 2}
			t, err := experiments.Fig12Master(p, sizes)
			checkErr(err)
			t.Fprint(os.Stdout)
			counts := []int{10, 100, *tuples, *tuples * 2}
			t, err = experiments.Fig12Stream(p, counts)
			checkErr(err)
			t.Fprint(os.Stdout)
		}
	}
}

func checkErr(err error) {
	if err == nil {
		return
	}
	// *master.BuildError renders the failing tuple's shard/id/key itself;
	// the sentinel check just names the subsystem for the operator.
	if errors.Is(err, master.ErrMasterBuild) {
		fatalf("master data rejected: %v", err)
	}
	fatalf("%v", err)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "expdriver: "+format+"\n", args...)
	os.Exit(1)
}
