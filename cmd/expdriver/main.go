// Command expdriver regenerates every table and figure of the paper's
// evaluation (§6) on the synthetic HOSP/DBLP substrate and prints them as
// aligned text tables. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for a discussion of paper-vs-measured results.
//
// Usage:
//
//	expdriver [-experiment all|exp1|exp2|fig9|fig10|fig11|fig12]
//	          [-dataset hosp|dblp|both] [-master N] [-tuples N] [-seed N]
//
// The defaults run a laptop-scale pass (|Dm| = 2000, |D| = 500) in a few
// seconds; raise -master/-tuples to approach the paper's 10K/10K setting.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run: all, exp1, exp2, fig9, fig10, fig11, fig12")
		dataset    = flag.String("dataset", "both", "dataset: hosp, dblp or both")
		masterSize = flag.Int("master", 2000, "master relation size |Dm|")
		tuples     = flag.Int("tuples", 500, "input tuples |D|")
		seed       = flag.Int64("seed", 1, "generator seed")
		workers    = flag.Int("workers", 1, "batch-fix workers for accuracy experiments (fig12 latency always runs sequentially)")
	)
	flag.Parse()

	datasets := []string{"hosp", "dblp"}
	switch *dataset {
	case "both":
	case "hosp", "dblp":
		datasets = []string{*dataset}
	default:
		fatalf("unknown dataset %q", *dataset)
	}

	run := func(name string) bool { return *experiment == "all" || *experiment == name }

	if run("exp1") {
		t, err := experiments.Exp1RegionSizes(*seed, *masterSize)
		checkErr(err)
		t.Fprint(os.Stdout)
	}

	for _, ds := range datasets {
		p := experiments.Params{Dataset: ds, Seed: *seed, MasterSize: *masterSize, Tuples: *tuples, Workers: *workers}

		if run("exp2") {
			t, err := experiments.Exp2InitialSuggestion(p)
			checkErr(err)
			t.Fprint(os.Stdout)
		}
		if run("fig9") {
			t, err := experiments.Fig9(p)
			checkErr(err)
			t.Fprint(os.Stdout)
		}
		if run("fig10") {
			t, err := experiments.Fig10Sweep(p, "dup", []float64{0.1, 0.2, 0.3, 0.4, 0.5})
			checkErr(err)
			t.Fprint(os.Stdout)
			sizes := []float64{float64(*masterSize) / 2, float64(*masterSize), float64(*masterSize) * 3 / 2, float64(*masterSize) * 2, float64(*masterSize) * 5 / 2}
			t, err = experiments.Fig10Sweep(p, "master", sizes)
			checkErr(err)
			t.Fprint(os.Stdout)
			t, err = experiments.Fig10Sweep(p, "noise", []float64{0.1, 0.2, 0.3, 0.4, 0.5})
			checkErr(err)
			t.Fprint(os.Stdout)
		}
		if run("fig11") {
			t, err := experiments.Fig11Sweep(p, "dup", []float64{0.1, 0.2, 0.3, 0.4, 0.5})
			checkErr(err)
			t.Fprint(os.Stdout)
			sizes := []float64{float64(*masterSize) / 2, float64(*masterSize), float64(*masterSize) * 3 / 2, float64(*masterSize) * 2, float64(*masterSize) * 5 / 2}
			t, err = experiments.Fig11Sweep(p, "master", sizes)
			checkErr(err)
			t.Fprint(os.Stdout)
			t, err = experiments.Fig11Sweep(p, "noise", []float64{0.1, 0.2, 0.3, 0.4, 0.5})
			checkErr(err)
			t.Fprint(os.Stdout)
		}
		if run("fig12") {
			sizes := []int{*masterSize / 2, *masterSize, *masterSize * 3 / 2, *masterSize * 2}
			t, err := experiments.Fig12Master(p, sizes)
			checkErr(err)
			t.Fprint(os.Stdout)
			counts := []int{10, 100, *tuples, *tuples * 2}
			t, err = experiments.Fig12Stream(p, counts)
			checkErr(err)
			t.Fprint(os.Stdout)
		}
	}
}

func checkErr(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "expdriver: "+format+"\n", args...)
	os.Exit(1)
}
