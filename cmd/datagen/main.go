// Command datagen writes a synthetic HOSP or DBLP dataset to disk: the
// master relation, the dirty input tuples, their ground truths (all CSV)
// and the editing rules (DSL). The files feed cmd/certainfix and external
// tooling.
//
// Usage:
//
//	datagen -dataset hosp -outdir ./data -master 2000 -tuples 500 \
//	        -dup 0.3 -noise 0.2 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/datagen"
	"repro/internal/relation"
)

func main() {
	var (
		dataset    = flag.String("dataset", "hosp", "dataset: hosp or dblp")
		outdir     = flag.String("outdir", ".", "output directory")
		masterSize = flag.Int("master", 2000, "master relation size |Dm|")
		tuples     = flag.Int("tuples", 500, "input tuples |D|")
		dup        = flag.Float64("dup", 0.3, "duplicate rate d% in [0,1]")
		noise      = flag.Float64("noise", 0.2, "noise rate n% in [0,1]")
		seed       = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	cfg := datagen.Config{
		Seed:       *seed,
		MasterSize: *masterSize,
		Tuples:     *tuples,
		DupRate:    *dup,
		NoiseRate:  *noise,
	}
	var (
		ds    *datagen.Dataset
		rules string
		err   error
	)
	switch *dataset {
	case "hosp":
		ds, err = datagen.Hosp(cfg)
		rules = datagen.HospRulesDSL
	case "dblp":
		ds, err = datagen.Dblp(cfg)
		rules = datagen.DblpRulesDSL
	default:
		fatalf("unknown dataset %q", *dataset)
	}
	if err != nil {
		fatalf("%v", err)
	}

	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		fatalf("%v", err)
	}
	writeCSV(filepath.Join(*outdir, *dataset+"_master.csv"), ds.Master.Relation())

	inputs := relation.NewRelation(ds.Sigma.Schema())
	inputs.MustAppend(ds.Inputs...)
	writeCSV(filepath.Join(*outdir, *dataset+"_input.csv"), inputs)

	truths := relation.NewRelation(ds.Sigma.Schema())
	truths.MustAppend(ds.Truths...)
	writeCSV(filepath.Join(*outdir, *dataset+"_truth.csv"), truths)

	// Prepend the schema headers cmd/certainfix and cmd/certainfixd
	// require, so the emitted files chain straight into the CLIs (the CI
	// scale smoke does exactly that).
	header := fmt.Sprintf("schema %s: %s\nmaster %s: %s\n",
		ds.Sigma.Schema().Name(), strings.Join(ds.Sigma.Schema().AttrNames(), ", "),
		ds.Master.Schema().Name(), strings.Join(ds.Master.Schema().AttrNames(), ", "))
	rulesPath := filepath.Join(*outdir, *dataset+".rules")
	if err := os.WriteFile(rulesPath, []byte(header+rules), 0o644); err != nil {
		fatalf("writing %s: %v", rulesPath, err)
	}
	fmt.Printf("wrote %s dataset: |Dm|=%d |D|=%d (%d erroneous tuples, %d erroneous cells) to %s\n",
		*dataset, ds.Master.Len(), len(ds.Inputs), ds.ErroneousTuples(), ds.ErroneousCells(), *outdir)
}

func writeCSV(path string, rel *relation.Relation) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if err := rel.WriteCSV(f); err != nil {
		fatalf("writing %s: %v", path, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(1)
}
