package main

// Durability at the daemon level: a graceful SIGTERM-style shutdown
// flushes the WAL even with fsync off, and a SIGKILL mid-update-storm
// loses nothing that was acknowledged (fsync always). The second test
// runs the real binary — build, kill, restart — as the crash-recovery
// smoke CI gates on.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/paperex"
	"repro/pkg/certainfix"
)

// TestGracefulShutdownDurable mirrors main's shutdown ordering —
// srv.Shutdown, then sys.Close — over a lineage that never fsyncs on its
// own, with a fix session in flight across the restart. Close is what
// puts the acknowledged epochs on disk; recovery must see all of them.
func TestGracefulShutdownDurable(t *testing.T) {
	dir := t.TempDir()
	truth := certainfix.StringTuple(
		"Robert", "Brady", "131", "6884563", "1",
		"51 Elm Row", "Edi", "EH7 4AH", "CD")
	sys, err := certainfix.New(paperex.Sigma0(), paperex.MasterRelation(),
		certainfix.WithWAL(dir), certainfix.WithFsync(certainfix.FsyncOff))
	if err != nil {
		t.Fatal(err)
	}
	base, stop := startServer(t, sys)

	var sess wireSession
	if code := post(t, base+"/v1/begin", map[string]any{"tuple": paperex.InputT2()}, &sess); code != http.StatusOK {
		t.Fatalf("begin: HTTP %d", code)
	}
	sess = answer(t, base, sess, truth) // in flight: one round done, token held

	var acked uint64
	for i := 0; i < 5; i++ {
		var upd struct {
			Epoch uint64 `json:"epoch"`
		}
		if code := post(t, base+"/v1/update-master", map[string]any{
			"adds": []certainfix.Tuple{paperex.MasterRelation().Tuple(i % 2).Clone()},
		}, &upd); code != http.StatusOK {
			t.Fatalf("update-master: HTTP %d", code)
		}
		acked = upd.Epoch
	}

	// main's ordering: drain the server, then flush and close the WAL.
	stop()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := certainfix.New(paperex.Sigma0(), nil, certainfix.WithWAL(dir))
	if err != nil {
		t.Fatalf("recover after graceful shutdown: %v", err)
	}
	defer sys2.Close()
	if got := sys2.MasterEpoch(); got != acked {
		t.Fatalf("recovered epoch %d, want %d (graceful shutdown must flush)", got, acked)
	}
	// The suspended session resumes against the recovered lineage.
	base2, stop2 := startServer(t, sys2)
	defer stop2()
	next := sess
	for i := 0; !next.Done; i++ {
		if i > 10 {
			t.Fatal("resumed session did not converge")
		}
		next = answer(t, base2, next, truth)
	}
	if !next.Completed {
		t.Fatalf("resumed session incomplete: %+v", next)
	}
}

// TestCrashRecoverySmoke builds the real certainfixd binary, SIGKILLs it
// in the middle of an update storm, restarts it on the same -wal-dir, and
// proves (a) no acknowledged epoch was lost, (b) the recovered master is
// epoch-consistent — each update added exactly one tuple, so |Dm| must
// equal the seed size plus the recovered epoch — and (c) the recovered
// data serves fixes.
func TestCrashRecoverySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "certainfixd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	rules := filepath.Join(dir, "kv.rules")
	if err := os.WriteFile(rules, []byte(
		"schema R: K, V\nmaster Rm: K, V\nrule kv: (K ; K) -> (V ; V) when K != nil\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	masterCSV := filepath.Join(dir, "master.csv")
	if err := os.WriteFile(masterCSV, []byte("K,V\nk1,v1\nk2,v2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	walDir := filepath.Join(dir, "wal")

	start := func() (*exec.Cmd, string) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		cmd := exec.Command(bin,
			"-rules", rules, "-master", masterCSV, "-addr", addr,
			"-wal-dir", walDir, "-fsync", "always", "-checkpoint-every", "8")
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		base := "http://" + addr
		for i := 0; ; i++ {
			resp, err := http.Get(base + "/healthz")
			if err == nil {
				resp.Body.Close()
				break
			}
			if i > 100 {
				t.Fatalf("daemon did not come up: %v", err)
			}
			time.Sleep(50 * time.Millisecond)
		}
		return cmd, base
	}

	cmd, base := start()
	// The storm: every acknowledged update added one tuple ("add-i",
	// "val-i"). Kill the daemon hard partway through — some request is
	// likely mid-flight, which is the point.
	var acked uint64
	for i := 0; i < 30; i++ {
		var upd struct {
			Epoch uint64 `json:"epoch"`
		}
		code := post(t, base+"/v1/update-master", map[string]any{
			"adds": [][]string{{fmt.Sprintf("add-%d", i), fmt.Sprintf("val-%d", i)}},
		}, &upd)
		if code != http.StatusOK {
			t.Fatalf("update %d: HTTP %d", i, code)
		}
		acked = upd.Epoch
	}
	// Keep a second storm of unacknowledged updates in flight — fire and
	// forget — so the kill lands with requests mid-write. Whether any of
	// them landed is what the epoch/content invariant below absorbs.
	noise := make(chan struct{})
	go func() {
		defer close(noise)
		for j := 0; ; j++ {
			body, _ := json.Marshal(map[string]any{
				"adds": [][]string{{fmt.Sprintf("noise-%d", j), "x"}},
			})
			resp, err := http.Post(base+"/v1/update-master", "application/json", bytes.NewReader(body))
			if err != nil {
				return // the daemon died under us — mission accomplished
			}
			resp.Body.Close()
		}
	}()
	time.Sleep(30 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()
	<-noise

	cmd2, base2 := start()
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()
	resp, err := http.Get(base2 + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Epoch      uint64 `json:"epoch"`
		MasterSize int    `json:"masterSize"`
		Durability *struct {
			Recovery struct {
				UsedCheckpoint bool `json:"UsedCheckpoint"`
			}
		} `json:"durability"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Durability == nil {
		t.Fatal("restarted daemon reports no durability block")
	}
	if health.Epoch < acked {
		t.Fatalf("acknowledged epoch lost: recovered %d < acked %d", health.Epoch, acked)
	}
	if want := 2 + int(health.Epoch); health.MasterSize != want {
		t.Fatalf("epoch/content mismatch: epoch %d with |Dm| %d (want %d)",
			health.Epoch, health.MasterSize, want)
	}
	// A replayed tuple serves a fix: assert K for ("add-7", junk), the
	// rule must restore "val-7" from the recovered master.
	var sess wireSession
	if code := post(t, base2+"/v1/begin", map[string]any{
		"tuple": []string{"add-7", "junk"},
	}, &sess); code != http.StatusOK {
		t.Fatalf("begin on recovered daemon: HTTP %d", code)
	}
	truth := certainfix.StringTuple("add-7", "val-7")
	for i := 0; !sess.Done; i++ {
		if i > 5 {
			t.Fatal("fix on recovered daemon did not converge")
		}
		sess = answer(t, base2, sess, truth)
	}
	if !sess.Completed || sess.Tuple[1].Str() != "val-7" {
		t.Fatalf("recovered fix: %+v", sess)
	}
}
