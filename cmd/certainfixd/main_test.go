package main

// End-to-end smoke for the daemon: boot a real HTTP server on a loopback
// port, fix one tuple with plain JSON requests (what a curl session
// would send), exercise the token round-trip — including resuming
// against a *second* server instance mid-fix, since the handlers are
// stateless — and shut down gracefully.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/paperex"
	"repro/pkg/certainfix"
)

func paperSystem(t *testing.T, opts ...certainfix.Option) *certainfix.System {
	t.Helper()
	sys, err := certainfix.New(paperex.Sigma0(), paperex.MasterRelation(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// startServer boots a real listener and returns its base URL plus a
// graceful stopper.
func startServer(t *testing.T, sys *certainfix.System) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: newHandler(sys)}
	go func() { _ = srv.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}
	return "http://" + ln.Addr().String(), stop
}

// post sends one JSON request and decodes the JSON reply, returning the
// HTTP status.
func post(t *testing.T, url string, body any, reply any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if reply != nil {
		if err := json.NewDecoder(resp.Body).Decode(reply); err != nil {
			t.Fatalf("decode reply from %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

type wireSession struct {
	Token          json.RawMessage  `json:"token"`
	Suggested      []int            `json:"suggested"`
	SuggestedAttrs []string         `json:"suggestedAttrs"`
	Tuple          certainfix.Tuple `json:"tuple"`
	Rounds         int              `json:"rounds"`
	Done           bool             `json:"done"`
	Completed      bool             `json:"completed"`
	Epoch          uint64           `json:"epoch"`
}

// answer runs one round against base, asserting truth for the pending
// suggestion.
func answer(t *testing.T, base string, sess wireSession, truth certainfix.Tuple) wireSession {
	t.Helper()
	values := make([]certainfix.Value, len(sess.Suggested))
	for i, p := range sess.Suggested {
		values[i] = truth[p]
	}
	var next wireSession
	if code := post(t, base+"/v1/answer", map[string]any{
		"token": sess.Token, "attrs": sess.Suggested, "values": values,
	}, &next); code != http.StatusOK {
		t.Fatalf("answer: HTTP %d", code)
	}
	return next
}

// TestHTTPFixOneTuple: the full zero-to-result flow of the README
// narrative — begin, answer rounds until done, fetch the result — over a
// real socket, with the mid-fix rounds served by a *different* server
// process to prove statelessness.
func TestHTTPFixOneTuple(t *testing.T) {
	truth := certainfix.StringTuple(
		"Robert", "Brady", "131", "6884563", "1",
		"51 Elm Row", "Edi", "EH7 4AH", "CD")

	baseA, stopA := startServer(t, paperSystem(t))
	baseB, stopB := startServer(t, paperSystem(t)) // an independent replica
	defer stopB()

	var sess wireSession
	if code := post(t, baseA+"/v1/begin", map[string]any{"tuple": paperex.InputT2()}, &sess); code != http.StatusOK {
		t.Fatalf("begin: HTTP %d", code)
	}
	if sess.Done || len(sess.Suggested) == 0 || len(sess.SuggestedAttrs) != len(sess.Suggested) {
		t.Fatalf("begin reply: %+v", sess)
	}

	// Round 1 on server A, then A goes away entirely.
	sess = answer(t, baseA, sess, truth)
	stopA()

	// The token carries the whole session to replica B.
	for i := 0; !sess.Done; i++ {
		if i > 10 {
			t.Fatal("session did not converge")
		}
		sess = answer(t, baseB, sess, truth)
	}
	if !sess.Completed {
		t.Fatalf("session finished incomplete: %+v", sess)
	}
	if !sess.Tuple.Equal(truth) {
		t.Fatalf("fixed tuple %v != truth %v", sess.Tuple, truth)
	}

	var res struct {
		Result certainfix.Result `json:"result"`
	}
	if code := post(t, baseB+"/v1/result", map[string]any{"token": sess.Token}, &res); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	if !res.Result.Completed || !res.Result.Tuple.Equal(truth) {
		t.Fatalf("result: %+v", res.Result)
	}

	// Answering a finished session is a 409 with a machine-readable code.
	var errReply map[string]string
	if code := post(t, baseB+"/v1/answer", map[string]any{
		"token": sess.Token, "attrs": []int{0}, "values": []certainfix.Value{certainfix.Null},
	}, &errReply); code != http.StatusConflict || errReply["code"] != "session_done" {
		t.Fatalf("answer-after-done: HTTP %d %v", code, errReply)
	}
}

// TestHTTPSuggestAndErrors: /v1/suggest peeks without advancing, and the
// error mapping covers bad JSON, bad tokens and arity mismatches.
func TestHTTPSuggestAndErrors(t *testing.T) {
	base, stop := startServer(t, paperSystem(t))
	defer stop()

	var sess wireSession
	if code := post(t, base+"/v1/begin", map[string]any{"tuple": paperex.InputT1()}, &sess); code != http.StatusOK {
		t.Fatalf("begin: HTTP %d", code)
	}
	var peek wireSession
	if code := post(t, base+"/v1/suggest", map[string]any{"token": sess.Token}, &peek); code != http.StatusOK {
		t.Fatalf("suggest: HTTP %d", code)
	}
	if peek.Rounds != 0 || fmt.Sprint(peek.Suggested) != fmt.Sprint(sess.Suggested) {
		t.Fatalf("suggest must not advance: %+v vs %+v", peek, sess)
	}

	var errReply map[string]string
	if code := post(t, base+"/v1/begin", map[string]any{"tuple": []string{"short"}}, &errReply); code != http.StatusBadRequest {
		t.Fatalf("short begin: HTTP %d %v", code, errReply)
	}
	if code := post(t, base+"/v1/answer", map[string]any{"token": json.RawMessage(`{"v":99}`)}, &errReply); code != http.StatusBadRequest {
		t.Fatalf("bad token: HTTP %d %v", code, errReply)
	}
	// An out-of-range attribute position is bad client input, not a
	// server fault.
	if code := post(t, base+"/v1/answer", map[string]any{
		"token": sess.Token, "attrs": []int{99}, "values": []certainfix.Value{certainfix.Null},
	}, &errReply); code != http.StatusBadRequest || errReply["code"] != "invalid_input" {
		t.Fatalf("out-of-range attr: HTTP %d %v", code, errReply)
	}
	resp, err := http.Post(base+"/v1/begin", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: HTTP %d", resp.StatusCode)
	}
	if code := post(t, base+"/healthz", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz: HTTP %d", code)
	}
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: HTTP %d", resp.StatusCode)
	}
}

// TestHTTPEpochEvictionAndRebase: update-master advances the epoch; with
// a single-slot ring the suspended session's epoch evicts, /v1/answer
// replies 409 epoch_evicted, and "rebase": true recovers.
func TestHTTPEpochEvictionAndRebase(t *testing.T) {
	truth := certainfix.StringTuple(
		"Robert", "Brady", "131", "6884563", "1",
		"51 Elm Row", "Edi", "EH7 4AH", "CD")
	base, stop := startServer(t, paperSystem(t, certainfix.WithMasterHistory(1)))
	defer stop()

	var sess wireSession
	if code := post(t, base+"/v1/begin", map[string]any{"tuple": paperex.InputT2()}, &sess); code != http.StatusOK {
		t.Fatalf("begin: HTTP %d", code)
	}
	sess = answer(t, base, sess, truth)

	var upd map[string]any
	if code := post(t, base+"/v1/update-master", map[string]any{
		"adds": []certainfix.Tuple{certainfix.StringTuple(
			"Jane", "Doe", "999", "5551234", "070000000",
			"1 Test St", "Tst", "ZZ1 1ZZ", "01/01/70", "F")},
	}, &upd); code != http.StatusOK {
		t.Fatalf("update-master: HTTP %d %v", code, upd)
	}

	values := []certainfix.Value{}
	attrs := []int{}
	for _, p := range sess.Suggested {
		attrs = append(attrs, p)
		values = append(values, truth[p])
	}
	var errReply map[string]string
	if code := post(t, base+"/v1/answer", map[string]any{
		"token": sess.Token, "attrs": attrs, "values": values,
	}, &errReply); code != http.StatusConflict || errReply["code"] != "epoch_evicted" {
		t.Fatalf("evicted answer: HTTP %d %v", code, errReply)
	}

	var next wireSession
	if code := post(t, base+"/v1/answer", map[string]any{
		"token": sess.Token, "attrs": attrs, "values": values, "rebase": true,
	}, &next); code != http.StatusOK {
		t.Fatalf("rebased answer: HTTP %d", code)
	}
	for i := 0; !next.Done; i++ {
		if i > 10 {
			t.Fatal("rebased session did not converge")
		}
		next = answer(t, base, next, truth)
	}
	if !next.Completed {
		t.Fatalf("rebased session incomplete: %+v", next)
	}
}

// TestBuildSystemFromFiles: the daemon's file loaders (schema-header
// rules file + master CSV) produce a working system.
func TestBuildSystemFromFiles(t *testing.T) {
	dir := t.TempDir()
	rules := filepath.Join(dir, "kv.rules")
	if err := os.WriteFile(rules, []byte(
		"schema R: K, V\nmaster Rm: K, V\nrule kv: (K ; K) -> (V ; V) when K != nil\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	masterCSV := filepath.Join(dir, "master.csv")
	if err := os.WriteFile(masterCSV, []byte("K,V\nk1,v1\nk2,v2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sys, err := buildSystem(serverConfig{rulesPath: rules, masterPath: masterCSV, maxRounds: 3, history: 4, shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	fixed, _, changed, err := sys.RepairOnce(certainfix.StringTuple("k1", "wrong"), []int{0})
	if err != nil || len(changed) != 1 || fixed[1].Str() != "v1" {
		t.Fatalf("fixed=%v changed=%v err=%v", fixed, changed, err)
	}
	if _, err := buildSystem(serverConfig{rulesPath: filepath.Join(dir, "missing.rules"), masterPath: masterCSV}); err == nil {
		t.Fatal("missing rules file must error")
	}

	// -master-snapshot round trip: first start builds from CSV and saves
	// the arena; second start loads it — without the CSV — and fixes
	// identically. Stats must report the arena backing.
	arena := filepath.Join(dir, "master.arena")
	if _, err := buildSystem(serverConfig{rulesPath: rules, masterPath: masterCSV, snapshot: arena}); err != nil {
		t.Fatal(err)
	}
	sys2, err := buildSystem(serverConfig{rulesPath: rules, snapshot: arena})
	if err != nil {
		t.Fatal(err)
	}
	fixed, _, changed, err = sys2.RepairOnce(certainfix.StringTuple("k2", "wrong"), []int{0})
	if err != nil || len(changed) != 1 || fixed[1].Str() != "v2" {
		t.Fatalf("arena-loaded fix: fixed=%v changed=%v err=%v", fixed, changed, err)
	}
	if ms := sys2.MasterMemStats(); !ms.ArenaBacked {
		t.Fatalf("arena-loaded system reports no arena backing: %+v", ms)
	}
	// Snapshot path given but file absent and no CSV either: a clear error.
	if _, err := buildSystem(serverConfig{rulesPath: rules, snapshot: filepath.Join(dir, "absent.arena")}); err == nil {
		t.Fatal("missing master and missing snapshot must error")
	}
}
