package main

// Two-node epoch shipping with real binaries: a leader under an update
// storm, a follower started mid-storm (behind a truncation, so its
// bootstrap is the checkpoint catch-up path), SIGKILLed and restarted,
// and still ending epoch-identical — with session tokens minted on the
// leader finishing on the follower and writes to the follower refused.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/pkg/certainfix"
)

// healthSnapshot is the /healthz subset the smoke asserts on.
type healthSnapshot struct {
	Epoch       uint64 `json:"epoch"`
	MasterSize  int    `json:"masterSize"`
	Replication *struct {
		State string `json:"state"`
		Lag   uint64 `json:"lag"`
	} `json:"replication"`
}

func getHealth(t *testing.T, base string) healthSnapshot {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestFollowerReplicationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real binaries")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "certainfixd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	rules := filepath.Join(dir, "kv.rules")
	if err := os.WriteFile(rules, []byte(
		"schema R: K, V\nmaster Rm: K, V\nrule kv: (K ; K) -> (V ; V) when K != nil\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	masterCSV := filepath.Join(dir, "master.csv")
	if err := os.WriteFile(masterCSV, []byte("K,V\nk1,v1\nk2,v2\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	start := func(args ...string) (*exec.Cmd, string) {
		t.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		cmd := exec.Command(bin, append([]string{"-rules", rules, "-addr", addr}, args...)...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		base := "http://" + addr
		for i := 0; ; i++ {
			resp, err := http.Get(base + "/healthz")
			if err == nil {
				resp.Body.Close()
				break
			}
			if i > 100 {
				t.Fatalf("daemon did not come up: %v", err)
			}
			time.Sleep(50 * time.Millisecond)
		}
		return cmd, base
	}
	kill := func(cmd *exec.Cmd) {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}

	leader, leaderBase := start("-master", masterCSV,
		"-wal-dir", filepath.Join(dir, "wal"), "-fsync", "always", "-checkpoint-every", "8")
	defer kill(leader)

	update := func(i int) {
		t.Helper()
		var upd struct {
			Epoch uint64 `json:"epoch"`
		}
		if code := post(t, leaderBase+"/v1/update-master", map[string]any{
			"adds": [][]string{{fmt.Sprintf("add-%d", i), fmt.Sprintf("val-%d", i)}},
		}, &upd); code != http.StatusOK {
			t.Fatalf("update %d: HTTP %d", i, code)
		}
	}
	// First half of the storm before the follower exists: with
	// -checkpoint-every 8 the early epochs are already truncated, so the
	// follower's bootstrap MUST come from the leader's checkpoint image.
	for i := 0; i < 16; i++ {
		update(i)
	}

	follower, followerBase := start("-follow", leaderBase)
	waitConverged := func(what string) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for {
			lh, fh := getHealth(t, leaderBase), getHealth(t, followerBase)
			if fh.Replication == nil {
				t.Fatal("follower /healthz has no replication block")
			}
			if fh.Epoch == lh.Epoch && fh.MasterSize == lh.MasterSize && fh.Replication.Lag == 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: follower at epoch %d/|Dm| %d, leader %d/%d (state %s)",
					what, fh.Epoch, fh.MasterSize, lh.Epoch, lh.MasterSize, fh.Replication.State)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	// Second half of the storm lands while the follower tails live.
	for i := 16; i < 30; i++ {
		update(i)
	}
	waitConverged("mid-storm attach")

	// SIGKILL the follower, keep the leader moving (past another
	// checkpoint), restart: the re-bootstrap converges again.
	kill(follower)
	for i := 30; i < 45; i++ {
		update(i)
	}
	follower2, followerBase := start("-follow", leaderBase)
	defer kill(follower2)
	waitConverged("restart after SIGKILL")

	// A fix session begun on the LEADER finishes on the FOLLOWER: the
	// token pins an epoch both lineages hold, and shipping made them
	// probe-for-probe identical.
	var sess wireSession
	if code := post(t, leaderBase+"/v1/begin", map[string]any{
		"tuple": []string{"add-41", "junk"},
	}, &sess); code != http.StatusOK {
		t.Fatalf("begin on leader: HTTP %d", code)
	}
	truth := certainfix.StringTuple("add-41", "val-41")
	for i := 0; !sess.Done; i++ {
		if i > 5 {
			t.Fatal("cross-node fix did not converge")
		}
		sess = answer(t, followerBase, sess, truth)
	}
	if !sess.Completed || sess.Tuple[1].Str() != "val-41" {
		t.Fatalf("cross-node fix: %+v", sess)
	}

	// Writes to the replica are refused with the machine code.
	var errReply struct {
		Code string `json:"code"`
	}
	if code := post(t, followerBase+"/v1/update-master", map[string]any{
		"adds": [][]string{{"rogue", "x"}},
	}, &errReply); code != http.StatusForbidden || errReply.Code != "read_only_replica" {
		t.Fatalf("follower write: HTTP %d code %q", code, errReply.Code)
	}
	// And the refusal changed nothing: still converged with the leader.
	waitConverged("after refused write")
}
