package main

// The HTTP layer of certainfixd. Every handler is stateless: the session
// state travels as a JSON token embedded in requests and responses, so
// any replica of this server (sharing the same rules and master lineage)
// can serve any round of any session — the stateless-server pattern the
// resumable session API exists for. The server holds exactly one piece
// of mutable state, the versioned master data inside the System, which
// /v1/update-master advances.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/pkg/certainfix"
)

// server wires a certainfix.System into HTTP handlers.
type server struct {
	sys *certainfix.System
}

// newHandler builds the route table.
func newHandler(sys *certainfix.System) http.Handler {
	s := &server{sys: sys}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/begin", s.handleBegin)
	mux.HandleFunc("POST /v1/suggest", s.handleSuggest)
	mux.HandleFunc("POST /v1/answer", s.handleAnswer)
	mux.HandleFunc("POST /v1/result", s.handleResult)
	mux.HandleFunc("POST /v1/update-master", s.handleUpdateMaster)
	// Epoch shipping, the leader side: followers stream acknowledged WAL
	// records and fetch the checkpoint image to bootstrap or catch up.
	// Both answer 404 {"code": "not_durable"} without -wal-dir.
	mux.HandleFunc("GET /v1/wal", sys.ServeWAL)
	mux.HandleFunc("GET /v1/checkpoint", sys.ServeCheckpoint)
	// The published master commitment: (epoch, root) identify the master
	// contents exactly. Clients pin or audit this root and check fix
	// provenance against it offline (certainfix.VerifyFix) — the server
	// never has to be trusted about which master tuples a fix consumed.
	mux.HandleFunc("GET /v1/root", func(w http.ResponseWriter, r *http.Request) {
		body := map[string]any{
			"epoch":         sys.MasterEpoch(),
			"authenticated": false,
		}
		if root, ok := sys.MasterRoot(); ok {
			body["authenticated"] = true
			body["root"] = root
		}
		writeJSON(w, http.StatusOK, body)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		body := map[string]any{
			"ok":         true,
			"epoch":      sys.MasterEpoch(),
			"masterSize": sys.MasterLen(),
			// Where the master's lookup structures live (heap vs arena)
			// and what they weigh — the observable side of -master-snapshot.
			"master": sys.MasterMemStats(),
		}
		// The durable lineage, when running with -wal-dir: checkpoint
		// epoch, log shape, and what recovery found on the last start.
		if st, ok := sys.Durability(); ok {
			body["durability"] = st
		}
		// The shipping state, when running with -follow: leader, lag,
		// catch-ups, and whether the loop is tailing or diverged.
		if st, ok := sys.Replication(); ok {
			body["replication"] = st
		}
		writeJSON(w, http.StatusOK, body)
	})
	return mux
}

// sessionResponse is the common reply of begin / suggest / answer: the
// new token (the client must send it back on the next call — the server
// keeps nothing) plus enough progress information to render a round.
type sessionResponse struct {
	Token          json.RawMessage  `json:"token"`
	Suggested      []int            `json:"suggested"`
	SuggestedAttrs []string         `json:"suggestedAttrs"`
	Tuple          certainfix.Tuple `json:"tuple"`
	Rounds         int              `json:"rounds"`
	Done           bool             `json:"done"`
	Completed      bool             `json:"completed"`
	Epoch          uint64           `json:"epoch"`
	// Root is the Merkle root of the session's pinned master snapshot,
	// present only under -auth. POST /v1/result returns the inclusion
	// proofs that tie the fix's provenance to it.
	Root string `json:"root,omitempty"`
}

func (s *server) sessionReply(w http.ResponseWriter, sess *certainfix.FixSession) {
	token, err := sess.MarshalBinary()
	if err != nil {
		writeErr(w, fmt.Errorf("serialize session: %w", err))
		return
	}
	suggested := sess.Suggested()
	if suggested == nil {
		suggested = []int{}
	}
	names := make([]string, len(suggested))
	for i, p := range suggested {
		names[i] = s.sys.Schema().Attr(p).Name
	}
	writeJSON(w, http.StatusOK, sessionResponse{
		Token:          token,
		Suggested:      suggested,
		SuggestedAttrs: names,
		Tuple:          sess.Tuple(),
		Rounds:         sess.Rounds(),
		Done:           sess.Done(),
		Completed:      sess.Completed(),
		Epoch:          sess.Epoch(),
		Root:           sess.Root(),
	})
}

type beginRequest struct {
	Tuple certainfix.Tuple `json:"tuple"`
}

func (s *server) handleBegin(w http.ResponseWriter, r *http.Request) {
	var req beginRequest
	if !readJSON(w, r, &req) {
		return
	}
	sess, err := s.sys.Begin(r.Context(), req.Tuple)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.sessionReply(w, sess)
}

type tokenRequest struct {
	Token json.RawMessage `json:"token"`
	// Rebase accepts re-pinning the current master head when the token's
	// original epoch has been evicted (see certainfix.RebaseToHead).
	Rebase bool `json:"rebase,omitempty"`
}

func (s *server) resume(r *http.Request, req tokenRequest) (*certainfix.FixSession, error) {
	var opts []certainfix.ResumeOption
	if req.Rebase {
		opts = append(opts, certainfix.RebaseToHead())
	}
	return s.sys.Resume(r.Context(), req.Token, opts...)
}

func (s *server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	var req tokenRequest
	if !readJSON(w, r, &req) {
		return
	}
	sess, err := s.resume(r, req)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.sessionReply(w, sess)
}

type answerRequest struct {
	tokenRequest
	// Attrs/Values are the asserted positions and their values, aligned.
	// Attrs may differ from the last suggestion; empty Attrs aborts the
	// session (§5: the users declined).
	Attrs  []int              `json:"attrs"`
	Values []certainfix.Value `json:"values"`
}

func (s *server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	var req answerRequest
	if !readJSON(w, r, &req) {
		return
	}
	sess, err := s.resume(r, req.tokenRequest)
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := sess.Provide(req.Attrs, req.Values); err != nil {
		writeErr(w, err)
		return
	}
	s.sessionReply(w, sess)
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	var req tokenRequest
	if !readJSON(w, r, &req) {
		return
	}
	sess, err := s.resume(r, req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"result": sess.Result()})
}

type updateMasterRequest struct {
	Adds    []certainfix.Tuple `json:"adds"`
	Deletes []int              `json:"deletes"`
}

func (s *server) handleUpdateMaster(w http.ResponseWriter, r *http.Request) {
	var req updateMasterRequest
	if !readJSON(w, r, &req) {
		return
	}
	epoch, err := s.sys.UpdateMaster(req.Adds, req.Deletes)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"epoch": epoch, "masterSize": s.sys.MasterLen()})
}

// readJSON decodes the request body into dst, replying 400 on failure.
func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, errBody(err, "bad_request"))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func errBody(err error, code string) map[string]string {
	return map[string]string{"error": err.Error(), "code": code}
}

// writeErr maps the library's typed sentinels onto HTTP statuses and
// machine-readable codes — the errors.Is contract of the API at work.
func writeErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, certainfix.ErrBadToken), errors.Is(err, certainfix.ErrArityMismatch):
		writeJSON(w, http.StatusBadRequest, errBody(err, "invalid_input"))
	case errors.Is(err, certainfix.ErrEpochEvicted):
		// Conflict, not 400: the token was valid; the server's retention
		// moved on. The client may retry with "rebase": true.
		writeJSON(w, http.StatusConflict, errBody(err, "epoch_evicted"))
	case errors.Is(err, certainfix.ErrSessionDone):
		writeJSON(w, http.StatusConflict, errBody(err, "session_done"))
	case errors.Is(err, certainfix.ErrReadOnlyReplica):
		// Forbidden, not 409: retrying here can never succeed — the
		// write belongs on the leader this replica follows.
		writeJSON(w, http.StatusForbidden, errBody(err, "read_only_replica"))
	case errors.Is(err, certainfix.ErrInconsistent):
		writeJSON(w, http.StatusConflict, errBody(err, "inconsistent"))
	default:
		writeJSON(w, http.StatusInternalServerError, errBody(err, "internal"))
	}
}
