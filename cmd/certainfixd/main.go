// Command certainfixd serves the certain-fix framework over HTTP — the
// data-monitoring service of §5 turned into a stateless JSON API. Fix
// sessions are resumable and serialized into client-held tokens, so the
// server keeps no per-session state: every round of every fix can land
// on any replica built over the same rules and master data.
//
// Endpoints (all JSON):
//
//	POST /v1/begin          {"tuple": [...]}               start a session
//	POST /v1/suggest        {"token": {...}}               peek at the pending suggestion
//	POST /v1/answer         {"token": {...}, "attrs": [..], "values": [..]}
//	                        run one round; empty attrs aborts the session
//	POST /v1/result         {"token": {...}}               final (or interim) result
//	POST /v1/update-master  {"adds": [[...]], "deletes": [..]}
//	                        publish a master-data delta (new epoch)
//	GET  /v1/wal?after=E    stream acknowledged WAL records past epoch E
//	                        (raw frames; 409 "wal_truncated" when E is
//	                        behind the checkpoint; needs -wal-dir)
//	GET  /v1/checkpoint     the newest arena checkpoint image, epoch in
//	                        X-Checkpoint-Epoch (needs -wal-dir)
//	GET  /v1/root           the published master commitment: {"epoch",
//	                        "root", "authenticated"} (root needs -auth)
//	GET  /healthz           liveness plus the master's memory accounting
//	                        ("master": heap vs arena residency, see
//	                        certainfix.MasterMemStats)
//
// begin/suggest/answer reply with {"token", "suggested",
// "suggestedAttrs", "tuple", "rounds", "done", "completed", "epoch"};
// the client must send the fresh token on its next call. A token pins
// the master epoch its session started on; after enough /v1/update-master
// publishes that epoch is evicted from the snapshot ring (-history) and
// /v1/answer replies 409 {"code": "epoch_evicted"} until the client
// retries with "rebase": true.
//
// Tokens are not authenticated — front this server with something that
// signs or MACs them before exposing it to untrusted clients.
//
// Usage:
//
//	certainfixd -rules hosp.rules -master hosp_master.csv -addr :8080
//
// The rules file uses the schema-header format of cmd/certainfix
// (schema R: ... / master Rm: ... / rule ... lines).
//
// With -master-snapshot the daemon cold-starts from a columnar arena
// image: when the file exists it is loaded (mmap + validate) instead of
// rebuilding indexes from the CSV; when it does not exist yet, the master
// is built from -master and the image is saved for the next start.
//
// With -wal-dir the master lineage is durable: every /v1/update-master is
// written to a segmented write-ahead log before it is acknowledged, arena
// checkpoints roll every -checkpoint-every deltas, and a restart recovers
// checkpoint + log tail instead of rewinding to the CSV. On the first
// start the directory is seeded from -master (or -master-snapshot); on
// later starts the directory alone is authoritative and -master may be
// omitted. -fsync picks the sync policy (always | interval | off);
// "always" — the default — makes an acknowledged update crash-proof.
// /healthz gains a "durability" block, and SIGINT/SIGTERM flush and close
// the log before exit.
//
// With -auth the daemon maintains a Merkle commitment over the master
// data: GET /v1/root publishes the (epoch, root) pair, session replies
// carry the pinned root, and /v1/result responses include per-attribute
// provenance — the rule that fired, the master tuple it consumed, and an
// inclusion proof. A client holding only the rules and the root checks a
// fix offline with certainfix.VerifyFix; replicas of an -auth leader
// audit every shipped epoch against the leader's logged root and refuse
// to publish a diverged lineage.
//
// With -follow the daemon is a read-only replica of another certainfixd:
// it bootstraps from the leader's GET /v1/checkpoint, tails GET /v1/wal,
// and serves every read endpoint against the replicated lineage —
// session tokens minted on the leader (or any sibling replica) resume
// here, because epoch shipping makes the lineages identical.
// /v1/update-master answers 403 {"code": "read_only_replica"}; /healthz
// gains a "replication" block with the leader, lag and shipping state.
// -follow is mutually exclusive with -master, -master-snapshot and
// -wal-dir (a replica owns no lineage of its own).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/pkg/certainfix"
)

func main() {
	var (
		rulesPath  = flag.String("rules", "", "rules file (schema headers + rule DSL)")
		masterPath = flag.String("master", "", "master relation CSV")
		addr       = flag.String("addr", ":8080", "listen address")
		useCache   = flag.Bool("suggestion-cache", false, "enable the CertainFix+ suggestion cache")
		maxRounds  = flag.Int("max-rounds", 0, "cap interaction rounds per session (0 = arity + 1)")
		history    = flag.Int("history", 0, "master snapshot ring size for session resume (0 = default)")
		shards     = flag.Int("shards", 0, "master index shards, built in parallel (0 = one per CPU)")
		snapshot   = flag.String("master-snapshot", "", "columnar master arena: load it when the file exists, else build from -master and save it")
		walDir     = flag.String("wal-dir", "", "durable lineage directory (write-ahead log + checkpoints); recovered on start")
		fsync      = flag.String("fsync", "always", "WAL fsync policy: always | interval | off")
		ckptEvery  = flag.Int("checkpoint-every", 0, "arena checkpoint every N deltas (0 = default, <0 = never)")
		follow     = flag.String("follow", "", "run as a read-only replica of the leader certainfixd at this base URL")
		auth       = flag.Bool("auth", false, "maintain a Merkle commitment over the master: /v1/root publishes it, fix results carry inclusion proofs, followers audit shipped epochs")
	)
	flag.Parse()
	if *rulesPath == "" {
		fatalf("-rules is required")
	}
	if *follow != "" && (*masterPath != "" || *snapshot != "" || *walDir != "") {
		fatalf("-follow is mutually exclusive with -master, -master-snapshot and -wal-dir: a replica's lineage comes from its leader")
	}
	if *follow == "" && *masterPath == "" && *snapshot == "" && *walDir == "" {
		fatalf("-master is required (or -master-snapshot naming an existing image, -wal-dir holding a recovered lineage, or -follow naming a leader)")
	}
	fsyncPolicy, err := certainfix.ParseFsyncPolicy(*fsync)
	if err != nil {
		fatalf("%v", err)
	}

	sys, err := buildSystem(serverConfig{
		rulesPath:       *rulesPath,
		masterPath:      *masterPath,
		snapshot:        *snapshot,
		useCache:        *useCache,
		maxRounds:       *maxRounds,
		history:         *history,
		shards:          *shards,
		walDir:          *walDir,
		fsync:           fsyncPolicy,
		checkpointEvery: *ckptEvery,
		follow:          *follow,
		auth:            *auth,
	})
	if err != nil {
		// *certainfix.MasterBuildError renders the failing tuple's
		// shard/id/key itself; the sentinel check names the subsystem.
		if errors.Is(err, certainfix.ErrMasterBuild) {
			fatalf("master data rejected: %v", err)
		}
		fatalf("%v", err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newHandler(sys),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "certainfixd: serving on %s (|Dm| = %d, epoch %d)\n",
		*addr, sys.MasterLen(), sys.MasterEpoch())
	if st, ok := sys.Durability(); ok {
		fmt.Fprintf(os.Stderr,
			"certainfixd: durable lineage %s (checkpoint epoch %d, replayed %d, torn bytes %d)\n",
			*walDir, st.Recovery.BaseEpoch, st.Recovery.Replayed, st.Recovery.TornBytes)
	}
	if st, ok := sys.Replication(); ok {
		fmt.Fprintf(os.Stderr,
			"certainfixd: read-only replica following %s (bootstrapped at epoch %d)\n",
			st.Leader, st.Epoch)
	}

	select {
	case err := <-errCh:
		fatalf("%v", err)
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Stateless by design: draining loses nothing — every in-flight
	// session's state lives in a token the client already holds.
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatalf("shutdown: %v", err)
	}
	// Only after the last handler has returned: flush and close the WAL,
	// so every acknowledged update is on disk regardless of -fsync.
	if err := sys.Close(); err != nil {
		fatalf("close lineage: %v", err)
	}
	fmt.Fprintln(os.Stderr, "certainfixd: drained, bye")
}

// serverConfig carries the flag values into buildSystem.
type serverConfig struct {
	rulesPath, masterPath, snapshot string
	useCache                        bool
	maxRounds, history, shards      int
	walDir                          string
	fsync                           certainfix.FsyncPolicy
	checkpointEvery                 int
	follow                          string
	auth                            bool
}

// buildSystem loads the rules file (schema headers + DSL) and constructs
// the System: from the columnar arena image when snapshot names an
// existing file (cold start by page-in), otherwise from the master CSV —
// saving the freshly built snapshot to the snapshot path, if given, so
// the next start takes the fast path. With walDir set the lineage is
// durable: the directory's checkpoint + WAL win over both sources once
// they exist, and a recovered start needs neither CSV nor arena.
func buildSystem(cfg serverConfig) (*certainfix.System, error) {
	src, err := os.ReadFile(cfg.rulesPath)
	if err != nil {
		return nil, err
	}
	_, rm, rules, err := certainfix.ParseRulesWithSchemas(string(src))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", cfg.rulesPath, err)
	}
	var opts []certainfix.Option
	if cfg.useCache {
		opts = append(opts, certainfix.WithSuggestionCache())
	}
	if cfg.maxRounds > 0 {
		opts = append(opts, certainfix.WithMaxRounds(cfg.maxRounds))
	}
	if cfg.history > 0 {
		opts = append(opts, certainfix.WithMasterHistory(cfg.history))
	}
	if cfg.auth {
		opts = append(opts, certainfix.WithAuth())
	}
	if cfg.follow != "" {
		// Replica: the leader's checkpoint and WAL are the only sources.
		return certainfix.NewFollower(rules, cfg.follow, opts...)
	}
	if cfg.walDir != "" {
		opts = append(opts,
			certainfix.WithWAL(cfg.walDir),
			certainfix.WithFsync(cfg.fsync),
			certainfix.WithCheckpointEvery(cfg.checkpointEvery))
	}
	if cfg.snapshot != "" {
		if _, statErr := os.Stat(cfg.snapshot); statErr == nil {
			sys, err := certainfix.NewFromArena(rules, cfg.snapshot, opts...)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", cfg.snapshot, err)
			}
			fmt.Fprintf(os.Stderr, "certainfixd: master loaded from arena %s\n", cfg.snapshot)
			return sys, nil
		}
	}
	if cfg.masterPath == "" {
		if cfg.walDir != "" {
			// Recovery-only boot: the WAL directory must hold a
			// checkpoint; certainfix.New reports it cleanly when not.
			return certainfix.New(rules, nil, opts...)
		}
		return nil, fmt.Errorf("-master is required when %s does not exist yet", cfg.snapshot)
	}
	f, err := os.Open(cfg.masterPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	masterRel, err := certainfix.ReadCSV(rm, bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", cfg.masterPath, err)
	}
	if cfg.shards > 0 {
		opts = append(opts, certainfix.WithShards(cfg.shards))
	}
	sys, err := certainfix.New(rules, masterRel, opts...)
	if err != nil {
		return nil, err
	}
	if cfg.snapshot != "" {
		if err := sys.SaveMasterArena(cfg.snapshot); err != nil {
			return nil, fmt.Errorf("save %s: %w", cfg.snapshot, err)
		}
		fmt.Fprintf(os.Stderr, "certainfixd: master arena saved to %s\n", cfg.snapshot)
	}
	return sys, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "certainfixd: "+format+"\n", args...)
	os.Exit(1)
}
