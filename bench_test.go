// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6) plus ablations of the design choices called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The benches run laptop-scale configurations (hundreds of tuples, |Dm|
// in the hundreds); cmd/expdriver runs the same experiments at larger
// scale with readable table output.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/fix"
	"repro/internal/master"
	"repro/internal/monitor"
	"repro/internal/paperex"
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
	"repro/internal/suggest"
)

const (
	benchMaster = 600
	benchTuples = 150
)

func benchParams(dataset string) experiments.Params {
	return experiments.Params{Dataset: dataset, Seed: 1, MasterSize: benchMaster, Tuples: benchTuples}
}

func mustHosp(b *testing.B, tuples int) *datagen.Dataset {
	b.Helper()
	ds, err := datagen.Hosp(datagen.Config{
		Seed: 1, MasterSize: benchMaster, Tuples: tuples, DupRate: 0.3, NoiseRate: 0.2,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// BenchmarkExp1RegionSize regenerates the Exp-1(1) table: certain-region
// derivation by CompCRegion and GRegion on both datasets.
func BenchmarkExp1RegionSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Exp1RegionSizes(1, benchMaster)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) != 2 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkExp2InitialSuggestion regenerates the Exp-1(2) table (CRHQ vs
// CRMQ F-measure) on hosp.
func BenchmarkExp2InitialSuggestion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Exp2InitialSuggestion(benchParams("hosp")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9aRecallTuple regenerates Fig. 9a (tuple-level recall per
// interaction round) and reports the k=1 and final recalls as metrics.
func BenchmarkFig9aRecallTuple(b *testing.B) {
	for _, dataset := range []string{"hosp", "dblp"} {
		b.Run(dataset, func(b *testing.B) {
			var tab *experiments.Table
			var err error
			for i := 0; i < b.N; i++ {
				tab, err = experiments.Fig9(benchParams(dataset))
				if err != nil {
					b.Fatal(err)
				}
			}
			reportCell(b, tab, 0, 1, "recall_t_k1")
			reportCell(b, tab, len(tab.Rows)-1, 1, "recall_t_final")
		})
	}
}

// BenchmarkFig9bRecallAttr regenerates Fig. 9b (attribute-level recall).
func BenchmarkFig9bRecallAttr(b *testing.B) {
	for _, dataset := range []string{"hosp", "dblp"} {
		b.Run(dataset, func(b *testing.B) {
			var tab *experiments.Table
			var err error
			for i := 0; i < b.N; i++ {
				tab, err = experiments.Fig9(benchParams(dataset))
				if err != nil {
					b.Fatal(err)
				}
			}
			reportCell(b, tab, 0, 2, "recall_a_k1")
			reportCell(b, tab, len(tab.Rows)-1, 2, "recall_a_final")
		})
	}
}

// BenchmarkFig10DupRate regenerates Fig. 10a/d (recall_t vs d%).
func BenchmarkFig10DupRate(b *testing.B) {
	benchFig10(b, "dup", []float64{0.1, 0.3, 0.5})
}

// BenchmarkFig10MasterSize regenerates Fig. 10b/e (recall_t vs |Dm|).
func BenchmarkFig10MasterSize(b *testing.B) {
	benchFig10(b, "master", []float64{benchMaster / 2, benchMaster, benchMaster * 2})
}

// BenchmarkFig10NoiseRate regenerates Fig. 10c/f (recall_t vs n%).
func BenchmarkFig10NoiseRate(b *testing.B) {
	benchFig10(b, "noise", []float64{0.1, 0.3, 0.5})
}

func benchFig10(b *testing.B, which string, values []float64) {
	for _, dataset := range []string{"hosp", "dblp"} {
		b.Run(dataset, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig10Sweep(benchParams(dataset), which, values); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11DupRate regenerates Fig. 11a/d (F-measure vs d%, with the
// IncRep baseline).
func BenchmarkFig11DupRate(b *testing.B) {
	benchFig11(b, "dup", []float64{0.1, 0.3, 0.5})
}

// BenchmarkFig11MasterSize regenerates Fig. 11b/e.
func BenchmarkFig11MasterSize(b *testing.B) {
	benchFig11(b, "master", []float64{benchMaster / 2, benchMaster, benchMaster * 2})
}

// BenchmarkFig11NoiseRate regenerates Fig. 11c/f — the IncRep noise
// collapse.
func BenchmarkFig11NoiseRate(b *testing.B) {
	benchFig11(b, "noise", []float64{0.1, 0.3, 0.5})
}

func benchFig11(b *testing.B, which string, values []float64) {
	for _, dataset := range []string{"hosp", "dblp"} {
		b.Run(dataset, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig11Sweep(benchParams(dataset), which, values); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12MasterScaling regenerates Fig. 12a/b: per-round latency
// vs |Dm|, CertainFix vs CertainFix+.
func BenchmarkFig12MasterScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12Master(benchParams("hosp"), []int{benchMaster / 2, benchMaster}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12StreamScaling regenerates Fig. 12c/d: per-round latency
// vs |D|.
func BenchmarkFig12StreamScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12Stream(benchParams("hosp"), []int{50, benchTuples}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationIndexedVsScan measures the master-data hash indexes
// (the "O(1) master probe" TransFix's complexity analysis assumes)
// against a linear scan.
func BenchmarkAblationIndexedVsScan(b *testing.B) {
	ds := mustHosp(b, 1)
	indexed := ds.Master
	bare := master.New(ds.Master.Relation())
	ru := ds.Sigma.Rule(0) // zip → ST
	probe := ds.Master.Tuple(benchMaster / 2).Clone()

	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ids := indexed.MatchIDs(ru, probe); len(ids) == 0 {
				b.Fatal("probe must match")
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ids := bare.MatchIDs(ru, probe); len(ids) == 0 {
				b.Fatal("probe must match")
			}
		}
	})
}

// BenchmarkProbeAlloc pins the tentpole guarantee on a realistic master:
// the indexed probe path (hash + bucket walk + verification) performs zero
// heap allocations per MatchIDs call, hit or miss. TestProbeZeroAlloc in
// internal/master enforces the same property as a hard test.
//
// Two distinct miss shapes are measured: an uninterned probe value (the
// symbol-table early exit) and interned values in a combination absent
// from the master (the full hash fold + empty-bucket path).
func BenchmarkProbeAlloc(b *testing.B) {
	ds := mustHosp(b, 1)
	ru := ds.Sigma.Rule(0)
	hit := ds.Master.Tuple(benchMaster / 2).Clone()
	missUninterned := hit.Clone()
	missUninterned[ru.LHS()[0]] = relation.String("no-such-key")

	// h04 keys on (id, mCode): splice another tuple's mCode into tuple 0
	// to build a probe of interned values whose pair misses.
	ru2 := ruleNamed(b, ds, "h04")
	missInterned := ds.Master.Tuple(0).Clone()
	x, xm := ru2.LHS(), ru2.LHSM()
	found := false
	for k := 1; k < ds.Master.Len() && !found; k++ {
		missInterned[x[1]] = ds.Master.Tuple(k)[xm[1]]
		found = len(ds.Master.MatchIDs(ru2, missInterned)) == 0
	}
	if !found {
		b.Fatal("could not build an interned-miss probe")
	}

	b.Run("hit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ids := ds.Master.MatchIDs(ru, hit); len(ids) == 0 {
				b.Fatal("probe must match")
			}
		}
	})
	b.Run("miss-uninterned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ids := ds.Master.MatchIDs(ru, missUninterned); len(ids) != 0 {
				b.Fatal("probe must miss")
			}
		}
	})
	b.Run("miss-interned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ids := ds.Master.MatchIDs(ru2, missInterned); len(ids) != 0 {
				b.Fatal("probe must miss")
			}
		}
	})
}

func ruleNamed(b *testing.B, ds *datagen.Dataset, name string) *rule.Rule {
	b.Helper()
	for _, ru := range ds.Sigma.Rules() {
		if ru.Name() == name {
			return ru
		}
	}
	b.Fatalf("rule %s not found", name)
	return nil
}

// BenchmarkClosure measures the compiled counter-based closure engine
// (rule.Compiled, one LINCLOSURE pass with reusable scratch) against the
// naive O(|Σ|²) fixpoint it replaced, on the 21-rule hosp set from the
// cascade-rich base {id, mCode}.
func BenchmarkClosure(b *testing.B) {
	ds := mustHosp(b, 1)
	sup := make([]bool, ds.Sigma.Len())
	for i, ru := range ds.Sigma.Rules() {
		sup[i] = ds.Master.PatternSupported(ru)
	}
	base := relation.NewAttrSet(ds.Sigma.Schema().MustPosList("id", "mCode")...)
	arity := ds.Sigma.Schema().Arity()

	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		prog := ds.Sigma.Compile(sup)
		sc := rule.NewClosureScratch()
		for i := 0; i < b.N; i++ {
			if prog.Closure(base, sc) != arity {
				b.Fatal("closure must cover R")
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if suggest.StructuralClosure(ds.Sigma, sup, base).Len() != arity {
				b.Fatal("closure must cover R")
			}
		}
	})
}

// BenchmarkApplicableRules measures Σ_t[Z] derivation with a partially
// validated lhs — the postings-based condition (c) against the per-rule
// Dm scan that made per-round latency linear in |Dm| (Fig. 12a/b).
func BenchmarkApplicableRules(b *testing.B) {
	ds := mustHosp(b, benchTuples)
	d := suggest.NewDeriver(ds.Sigma, ds.Master)
	t := ds.Inputs[0]
	// id validates half the (id, mCode) premises: the partial-lhs branch.
	zSet := relation.NewAttrSet(ds.Sigma.Schema().MustPosList("id")...)

	b.Run("postings", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if d.ApplicableRules(t, zSet).Len() == 0 {
				b.Fatal("refined set must not be empty")
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if d.ApplicableRulesNaive(t, zSet).Len() == 0 {
				b.Fatal("refined set must not be empty")
			}
		}
	})
}

// BenchmarkSuggest measures procedure Suggest end to end — both engines
// together (compiled closure + postings) against the naive pair — on a
// realistic hosp tuple with a partially validated Z.
func BenchmarkSuggest(b *testing.B) {
	ds := mustHosp(b, benchTuples)
	d := suggest.NewDeriver(ds.Sigma, ds.Master)
	t := ds.Inputs[0]
	zSet := relation.NewAttrSet(ds.Sigma.Schema().MustPosList("id")...)

	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if s := d.Suggest(t, zSet); len(s.S) == 0 {
				b.Fatal("empty suggestion")
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if s := d.SuggestNaive(t, zSet); len(s.S) == 0 {
				b.Fatal("empty suggestion")
			}
		}
	})
}

// BenchmarkFixBatch sweeps the worker count of the concurrent batch
// pipeline over one stream of dirty tuples — the throughput layer on top
// of the zero-allocation probes. b.N counts individual tuple fixes.
func BenchmarkFixBatch(b *testing.B) {
	ds := mustHosp(b, benchTuples)
	m, err := monitor.New(ds.Sigma, ds.Master, monitor.Config{})
	if err != nil {
		b.Fatal(err)
	}
	userFor := func(i int) monitor.User {
		return monitor.SimulatedUser{Truth: ds.Truths[i%len(ds.Truths)]}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			inputs := make([]relation.Tuple, b.N)
			for i := range inputs {
				inputs[i] = ds.Inputs[i%len(ds.Inputs)]
			}
			b.ResetTimer()
			if _, err := m.FixBatch(inputs, userFor, monitor.BatchOptions{Workers: workers}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAblationBDD measures Suggest+ (BDD-cached suggestions) against
// plain Suggest over a stream of tuples — the design choice behind
// CertainFix+ (§5.2).
func BenchmarkAblationBDD(b *testing.B) {
	ds := mustHosp(b, benchTuples)
	for _, cached := range []bool{false, true} {
		name := "certainfix"
		if cached {
			name = "certainfix+"
		}
		b.Run(name, func(b *testing.B) {
			m, err := monitor.New(ds.Sigma, ds.Master, monitor.Config{UseBDD: cached})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx := i % len(ds.Inputs)
				if _, err := m.Fix(ds.Inputs[idx], monitor.SimulatedUser{Truth: ds.Truths[idx]}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDirectVsGeneral compares the Thm-5 direct-fix checker
// with the general Thm-4 closure checker on the same direct region.
func BenchmarkAblationDirectVsGeneral(b *testing.B) {
	ds := mustHosp(b, 1)
	checker := analysis.NewChecker(ds.Sigma, ds.Master, analysis.Options{})
	r := ds.Sigma.Schema()
	tm := ds.Master.Tuple(0)
	rm := ds.Master.Schema()
	z := r.MustPosList("id", "mCode")
	row := pattern.MustTuple(z, []pattern.Cell{
		pattern.Eq(tm[rm.MustPos("id")]),
		pattern.Eq(tm[rm.MustPos("mCode")]),
	})
	reg := fix.MustRegion(z, pattern.NewTableau(row))

	b.Run("direct-thm5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := checker.DirectConsistent(reg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("general-thm4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := checker.Consistent(reg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationDepGraph compares TransFix (dependency-graph ordering,
// Fig. 5) with the naive fixpoint iteration over Σ.
func BenchmarkAblationDepGraph(b *testing.B) {
	ds := mustHosp(b, 1)
	g := rule.NewDepGraph(ds.Sigma)
	r := ds.Sigma.Schema()
	base := ds.Master.Tuple(0).Clone()
	z := r.MustPosList("id", "mCode")

	b.Run("transfix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := base.Clone()
			zSet := relation.NewAttrSet(z...)
			if _, err := fix.TransFix(g, ds.Master, t, &zSet); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := base.Clone()
			zSet := relation.NewAttrSet(z...)
			if _, err := fix.NaiveFix(ds.Sigma, ds.Master, t, &zSet); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCorePrimitives micro-benchmarks the hot paths: one rule
// application probe, one Suggest call, one Thm-4 concrete check on the
// paper's running example.
func BenchmarkCorePrimitives(b *testing.B) {
	sigma := paperex.Sigma0()
	dm := master.MustNewForRules(paperex.MasterRelation(), sigma)
	d := suggest.NewDeriver(sigma, dm)
	r := sigma.Schema()
	t1 := paperex.InputT1()
	zSet := relation.NewAttrSet(r.MustPosList("zip", "AC", "str", "city")...)

	b.Run("suggest", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if s := d.Suggest(t1, zSet); len(s.S) == 0 {
				b.Fatal("empty suggestion")
			}
		}
	})
	b.Run("concrete-check", func(b *testing.B) {
		z := r.MustPosList("zip", "phn", "type", "item")
		vals := []relation.Value{
			relation.String("EH7 4AH"), relation.String("079172485"),
			relation.String("2"), relation.String("CD"),
		}
		for i := 0; i < b.N; i++ {
			if !d.CertainRow(z, vals) {
				b.Fatal("row must be certain")
			}
		}
	})
	b.Run("explore", func(b *testing.B) {
		zs := relation.NewAttrSet(r.MustPosList("zip", "phn", "type", "item")...)
		for i := 0; i < b.N; i++ {
			res := fix.Explore(sigma, dm, t1, zs, 0)
			if !res.Unique() {
				b.Fatal("must be unique")
			}
		}
	})
}

func reportCell(b *testing.B, tab *experiments.Table, row, col int, name string) {
	b.Helper()
	var v float64
	if _, err := fmt.Sscanf(tab.Rows[row][col], "%f", &v); err != nil {
		b.Fatalf("cell %d,%d: %v", row, col, err)
	}
	b.ReportMetric(v, name)
}
