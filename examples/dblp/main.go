// DBLP enrichment: beyond fixing wrong values, editing rules enrich
// missing ones (§2, Example 2's eR3 "enrich t2[str, zip]"). Here a
// bibliography entry arrives with empty homepage and venue fields; once
// the paper key is confirmed, the master data fills everything in.
//
// Run with: go run ./examples/dblp
package main

import (
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/pkg/certainfix"
)

func main() {
	ds, err := datagen.Dblp(datagen.Config{
		Seed: 5, MasterSize: 800, Tuples: 1, DupRate: 1, NoiseRate: 0,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := certainfix.New(ds.Sigma, ds.Master.Relation(), certainfix.Options{})
	if err != nil {
		log.Fatal(err)
	}
	schema := sys.Schema()

	// Take a real (master-matching) record and blank out everything the
	// rules can derive: homepages and all venue fields.
	entry := ds.Truths[0].Clone()
	for _, name := range []string{"hp1", "hp2", "btitle", "publisher", "isbn", "crossref", "year"} {
		entry[schema.MustPos(name)] = certainfix.Null
	}
	fmt.Println("incomplete entry:")
	printEntry(schema, entry)

	// The φ7 key (type, a1, a2, ptitle, pages) plus the author columns is
	// exactly what the derived certain region asks for.
	best := sys.Regions()[0]
	fmt.Printf("\nconfirming: %v\n\n", best.ZSet.Names(schema))

	fixed, _, changed, err := sys.RepairOnce(entry, best.Z)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enriched %d attributes:\n", len(changed))
	printEntry(schema, fixed)

	if !fixed.Equal(ds.Truths[0]) {
		log.Fatal("enrichment should reconstruct the full record")
	}
	fmt.Println("\nenriched entry matches the master record exactly")
}

func printEntry(schema *certainfix.Schema, t certainfix.Tuple) {
	for i := 0; i < schema.Arity(); i++ {
		fmt.Printf("  %-10s %v\n", schema.Attr(i).Name, t[i])
	}
}
