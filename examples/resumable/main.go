// Resumable sessions: suspend a half-finished fix, move it to another
// process, continue it there — even while master data changes underneath.
//
// The demo walks the paper's running example (tuple t2 of Fig. 1a)
// through the session API:
//
//  1. "process A" begins a fix, answers round 1 and serializes the
//     session into a JSON token;
//  2. "process B" — an independently constructed System over the same
//     rules and master data — resumes the token and finishes the fix;
//  3. the same suspend/resume is repeated while an UpdateMaster lands in
//     between: the resumed session re-pins its original master epoch, so
//     the outcome is unchanged;
//  4. with a one-slot snapshot ring the epoch is evicted instead, and the
//     resume demonstrates ErrEpochEvicted plus the RebaseToHead escape
//     hatch.
//
// Run with: go run ./examples/resumable
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro/internal/paperex"
	"repro/pkg/certainfix"
)

func main() {
	ctx := context.Background()
	input := paperex.InputT2() // str and zip missing, city wrong
	truth := certainfix.StringTuple(
		"Robert", "Brady", "131", "6884563", "1",
		"51 Elm Row", "Edi", "EH7 4AH", "CD")

	// --- 1. Process A: begin, one round, suspend. -----------------------
	sysA := newSystem()
	sess, err := sysA.Begin(ctx, input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("input:  ", input)
	answerRound(sess, truth)
	fmt.Printf("after round 1 (epoch %d): %v\n", sess.Epoch(), sess.Tuple())

	token, err := sess.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suspended: token is %d bytes of JSON, server holds nothing\n", len(token))

	// --- 2. Process B: resume and finish. -------------------------------
	sysB := newSystem() // a different System instance: same rules + master
	resumed, err := sysB.Resume(ctx, token)
	if err != nil {
		log.Fatal(err)
	}
	for !resumed.Done() {
		answerRound(resumed, truth)
	}
	res := resumed.Result()
	fmt.Printf("resumed elsewhere, finished in %d rounds total: %v (completed=%v)\n\n",
		res.Rounds, res.Tuple, res.Completed)

	// --- 3. Resume across a master update: the epoch is re-pinned. ------
	sysC := newSystem()
	sess, err = sysC.Begin(ctx, input)
	if err != nil {
		log.Fatal(err)
	}
	answerRound(sess, truth)
	token, _ = sess.MarshalBinary()

	// Master correction lands while the session is suspended.
	epoch, err := sysC.UpdateMaster([]certainfix.Tuple{newMasterTuple()}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("master updated to epoch %d while the session was suspended\n", epoch)

	resumed, err = sysC.Resume(ctx, token)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed session still observes its original epoch %d (head is %d)\n\n",
		resumed.Epoch(), sysC.MasterEpoch())

	// --- 4. Eviction and the rebase escape hatch. -----------------------
	sysD, err := certainfix.New(paperex.Sigma0(), paperex.MasterRelation(),
		certainfix.WithMasterHistory(1)) // keep only the head
	if err != nil {
		log.Fatal(err)
	}
	sess, err = sysD.Begin(ctx, input)
	if err != nil {
		log.Fatal(err)
	}
	answerRound(sess, truth)
	token, _ = sess.MarshalBinary()
	if _, err := sysD.UpdateMaster([]certainfix.Tuple{newMasterTuple()}, nil); err != nil {
		log.Fatal(err)
	}

	if _, err := sysD.Resume(ctx, token); errors.Is(err, certainfix.ErrEpochEvicted) {
		fmt.Println("one-slot ring: resume fails with ErrEpochEvicted, as documented")
	} else if err != nil {
		log.Fatal(err)
	}
	resumed, err = sysD.Resume(ctx, token, certainfix.RebaseToHead())
	if err != nil {
		log.Fatal(err)
	}
	for !resumed.Done() {
		answerRound(resumed, truth)
	}
	fmt.Printf("rebased onto head epoch %d and finished: %v\n",
		resumed.Epoch(), resumed.Result().Tuple)
}

func newSystem() *certainfix.System {
	sys, err := certainfix.New(paperex.Sigma0(), paperex.MasterRelation())
	if err != nil {
		log.Fatal(err)
	}
	return sys
}

// answerRound asserts the truth for whatever the session suggests.
func answerRound(sess *certainfix.FixSession, truth certainfix.Tuple) {
	attrs := sess.Suggested()
	values := make([]certainfix.Value, len(attrs))
	for i, p := range attrs {
		values[i] = truth[p]
	}
	if err := sess.Provide(attrs, values); err != nil {
		log.Fatal(err)
	}
}

// newMasterTuple is a fresh master record for the update steps.
func newMasterTuple() certainfix.Tuple {
	return certainfix.StringTuple(
		"Jane", "Doe", "999", "5551234", "070000000",
		"1 Test St", "Tst", "ZZ1 1ZZ", "01/01/70", "F")
}
