// Hospital data monitoring: the paper's motivating scenario (§1) on the
// synthetic HOSP dataset — a stream of hospital-measure records is
// checked at the point of entry; each record is guided to a certain fix
// with a couple of rounds of (simulated) user interaction.
//
// Run with: go run ./examples/hospital
package main

import (
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/pkg/certainfix"
)

func main() {
	// Generate a HOSP world: 1000 master records, 60 incoming records,
	// 30% matching master entities, 20% of attribute values corrupted.
	ds, err := datagen.Hosp(datagen.Config{
		Seed: 11, MasterSize: 1000, Tuples: 60, DupRate: 0.3, NoiseRate: 0.2,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := certainfix.New(ds.Sigma, ds.Master.Relation(), certainfix.Options{
		UseSuggestionCache: true, // CertainFix+: reuse suggestions across the stream
	})
	if err != nil {
		log.Fatal(err)
	}

	schema := sys.Schema()
	best := sys.Regions()[0]
	fmt.Printf("monitoring %d incoming records against |Dm| = %d\n", len(ds.Inputs), ds.Master.Len())
	fmt.Printf("users are first asked to confirm: %v\n\n", best.ZSet.Names(schema))

	roundHist := map[int]int{}
	totalAuto := 0
	for i := range ds.Inputs {
		res, err := sys.Fix(ds.Inputs[i], certainfix.SimulatedUser{Truth: ds.Truths[i]})
		if err != nil {
			log.Fatal(err)
		}
		roundHist[res.Rounds]++
		totalAuto += res.AutoFixed.Len()
		if i < 3 { // show the first few
			fmt.Printf("record %d: %d round(s), rules fixed %v\n",
				i, res.Rounds, res.AutoFixed.Names(schema))
		}
	}

	fmt.Println("\nrounds-to-fix histogram:")
	for k := 1; k <= 5; k++ {
		if roundHist[k] > 0 {
			fmt.Printf("  %d round(s): %3d records\n", k, roundHist[k])
		}
	}
	fmt.Printf("rules validated %d attribute values without user effort\n", totalAuto)
}
