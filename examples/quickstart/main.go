// Quickstart: repair an order-entry tuple against a product catalog.
//
// A tiny end-to-end tour of the public API: define the input and master
// schemas, write two editing rules in the DSL, load master data, and fix
// a dirty tuple two ways — non-interactively (RepairOnce, trusting the
// SKU column) and interactively (Fix, with a simulated user).
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/certainfix"
)

func main() {
	// Input schema R: what the order-entry form captures.
	orders := certainfix.StringSchema("orders", "sku", "price", "desc", "qty")
	// Master schema Rm: the curated product catalog.
	catalog := certainfix.StringSchema("catalog", "sku", "price", "desc")

	// Editing rules: if the SKU is assured correct and appears in the
	// catalog, price and description are certain fixes. qty has no master
	// counterpart — no rule can (or should) touch it.
	rules, err := certainfix.ParseRules(orders, catalog, `
rule price: (sku ; sku) -> (price ; price) when sku != nil
rule desc:  (sku ; sku) -> (desc ; desc)  when sku != nil
`)
	if err != nil {
		log.Fatal(err)
	}

	masterRel := certainfix.NewRelation(catalog)
	masterRel.MustAppend(
		certainfix.StringTuple("SKU-1001", "19.99", "Espresso beans 1kg"),
		certainfix.StringTuple("SKU-1002", "7.49", "Paper filters (100)"),
		certainfix.StringTuple("SKU-1003", "249.00", "Burr grinder"),
	)

	sys, err := certainfix.New(rules, masterRel)
	if err != nil {
		log.Fatal(err)
	}

	// A dirty order: price fat-fingered, description truncated.
	dirty := certainfix.StringTuple("SKU-1002", "74.9", "Paper filt", "3")
	fmt.Println("dirty:", dirty)

	// Non-interactive: assure the SKU column, apply every certain fix.
	skuPos := orders.MustPos("sku")
	fixed, covered, changed, err := sys.RepairOnce(dirty, []int{skuPos})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fixed:", fixed)
	fmt.Printf("rules fixed %d attributes; validated set now %v\n",
		len(changed), covered.Names(orders))

	// Interactive: the framework suggests which attributes to confirm
	// (here: sku and qty — qty can only come from the user), then fixes
	// the rest. SimulatedUser stands in for a person, answering with the
	// ground truth.
	truth := certainfix.StringTuple("SKU-1002", "7.49", "Paper filters (100)", "3")
	res, err := sys.Fix(dirty, certainfix.SimulatedUser{Truth: truth})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interactive fix finished in %d round(s): %v\n", res.Rounds, res.Tuple)

	// What the system derived up front: the best certain region — the
	// minimal attribute set users must vouch for.
	best := sys.Regions()[0]
	fmt.Printf("best certain region asks users to validate: %v\n", best.ZSet.Names(orders))

	// When answers are not available synchronously — a form, a queue, a
	// network client — drive the fix as a resumable session instead of a
	// callback; see examples/resumable for suspend/resume across
	// processes.
	sess, err := sys.Begin(context.Background(), dirty)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session starts by asking about positions %v\n", sess.Suggested())
}
