// Rule discovery: mine editing rules from master data instead of writing
// them by hand — the future-work direction of §7 ("effective algorithms
// have to be in place for discovering editing rules from sample inputs
// and master data"), implemented as an extension and demonstrated here on
// the synthetic HOSP world: mine the rules, build a repair system from
// them, and fix a dirty record.
//
// Run with: go run ./examples/discovery
package main

import (
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/pkg/certainfix"
)

func main() {
	// A HOSP master relation — but no hand-written rules this time.
	ds, err := datagen.Hosp(datagen.Config{
		Seed: 21, MasterSize: 600, Tuples: 10, DupRate: 1, NoiseRate: 0.25,
	})
	if err != nil {
		log.Fatal(err)
	}
	schema := certainfix.StringSchema("hosp", fieldNames(ds)...)

	rules, deps, err := certainfix.DiscoverRules(schema, ds.Master.Relation(), certainfix.DiscoverOptions{
		MaxLHS:     1, // single-attribute keys keep the demo readable
		MinSupport: 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d editing rules from |Dm| = %d; the strongest five:\n",
		rules.Len(), ds.Master.Len())
	for i := 0; i < 5 && i < rules.Len(); i++ {
		fmt.Printf("  %v   (support %d)\n", rules.Rule(i), deps[i].Support)
	}

	sys, err := certainfix.New(rules, ds.Master.Relation(), certainfix.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest certain region from mined rules: validate %v\n",
		sys.Regions()[0].ZSet.Names(schema))

	// Fix a dirty record with the mined rules.
	dirty, truth := ds.Inputs[0], ds.Truths[0]
	res, err := sys.Fix(dirty, certainfix.SimulatedUser{Truth: truth})
	if err != nil {
		log.Fatal(err)
	}
	_, before, _ := certainfix.Score(dirty, truth, dirty, nil)
	_, recall, _ := certainfix.Score(dirty, truth, res.Tuple, nil)
	fmt.Printf("\nfixed a dirty record in %d round(s); error recall %.2f (was %.2f)\n",
		res.Rounds, recall, before)
	if !res.Tuple.Equal(truth) {
		log.Fatal("record should be fully corrected")
	}
	fmt.Println("record fully matches the ground truth")
}

func fieldNames(ds *datagen.Dataset) []string {
	s := ds.Master.Schema()
	names := make([]string, s.Arity())
	for i := range names {
		names[i] = s.Attr(i).Name
	}
	return names
}
