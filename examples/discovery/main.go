// Self-bootstrapping rule discovery: mine weighted editing rules from a
// NOISY master relation — no hand-written rules, no clean data — via the
// discover→fix→re-discover loop (certainfix.Discover), then verify the
// mined rule set reproduces the paper's hand-written HOSP rules and
// fixes a dirty record end to end.
//
// The §7 future-work direction ("effective algorithms have to be in
// place for discovering editing rules from sample inputs and master
// data") composed with weighted mining à la "Automatic Weighted Matching
// Rectifying Rule Discovery": mining tolerates dirty evidence by scoring
// each dependency with a confidence weight, the loop majority-repairs
// the master cells that violate high-confidence dependencies, and
// re-mining on the cleaned master sharpens the weights — so the system
// bootstraps both its Σ and a cleaner master from nothing.
//
// Run with: go run ./examples/discovery
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/datagen"
	"repro/pkg/certainfix"
)

func main() {
	// A pristine HOSP world — then corrupt ~3% of the master's cells, so
	// discovery has to work from dirty evidence (the realistic case: if
	// the master were known-perfect and rules known, there would be
	// nothing to bootstrap).
	ds, err := datagen.Hosp(datagen.Config{
		Seed: 21, MasterSize: 600, Tuples: 10, DupRate: 1, NoiseRate: 0.25,
	})
	if err != nil {
		log.Fatal(err)
	}
	pristine := ds.Master.Relation()
	noisy := pristine.Clone()
	rng := rand.New(rand.NewSource(99))
	corrupted := 0
	for i := 0; i < noisy.Len(); i++ {
		for a := 0; a < noisy.Schema().Arity(); a++ {
			if rng.Float64() < 0.03 {
				foreign := pristine.Tuple(rng.Intn(pristine.Len()))[a]
				noisy.Tuples()[i][a] = datagen.Corrupt(rng, noisy.Tuple(i)[a], foreign)
				corrupted++
			}
		}
	}
	fmt.Printf("corrupted %d of %d master cells (%.1f%%)\n",
		corrupted, noisy.Len()*noisy.Schema().Arity(),
		100*float64(corrupted)/float64(noisy.Len()*noisy.Schema().Arity()))

	// Bootstrap: mine weighted dependencies, majority-repair violating
	// cells, re-mine — certainfix.Discover drives the loop.
	schema := certainfix.StringSchema("hosp", fieldNames(ds)...)
	res, err := certainfix.Discover(schema, noisy, certainfix.DiscoverLoopOptions{
		Options: certainfix.DiscoverOptions{
			MaxLHS: 2, MinSupport: 20, MinConfidence: 0.85,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, rd := range res.Rounds {
		fmt.Printf("round %d: %d dependencies, %d cells repaired, mean confidence %.4f\n",
			rd.Round, rd.Deps, rd.CellsRepaired, rd.MeanConfidence)
	}

	// How much of the injected damage did the loop undo — and did it
	// break anything that was clean?
	repaired, stillDirty, broken := 0, 0, 0
	for i := 0; i < pristine.Len(); i++ {
		for a := 0; a < pristine.Schema().Arity(); a++ {
			wasClean := noisy.Tuple(i)[a].Equal(pristine.Tuple(i)[a])
			isClean := res.Cleaned.Tuple(i)[a].Equal(pristine.Tuple(i)[a])
			switch {
			case !wasClean && isClean:
				repaired++
			case !wasClean && !isClean:
				stillDirty++
			case wasClean && !isClean:
				broken++
			}
		}
	}
	// Overwritten-clean cells are the price of corrupted lhs values: a
	// tuple whose KEY cell was corrupted lands in the wrong group, and
	// majority repair pulls its dependent cells toward the wrong
	// majority. Those rows are exactly the ones user validation catches
	// once the system is live; the bootstrap still nets out well ahead.
	fmt.Printf("loop repaired %d corrupted cells to pristine; %d remain dirty; %d clean cells overwritten (net %d → %d dirty cells)\n",
		repaired, stillDirty, broken, corrupted, stillDirty+broken)

	// The mined set must reproduce the paper's hand-written HOSP rules: a
	// hand-written X → B counts as recovered when a mined dependency
	// derives B from X or a subset of it (the miner reports minimal lhs
	// sets, so it may find a tighter key than the hand-written one).
	hand := datagen.HospRules()
	recovered := 0
	for _, hr := range hand.Rules() {
		if coveredByMined(hr.LHS(), hr.RHS(), res.Deps) {
			recovered++
		} else {
			fmt.Printf("  not recovered: %v\n", hr)
		}
	}
	fmt.Printf("mined rules recover %d/%d hand-written HOSP rules\n", recovered, hand.Len())
	if float64(recovered) < 0.9*float64(hand.Len()) {
		log.Fatalf("recovery %d/%d below the 90%% bar", recovered, hand.Len())
	}

	// Build the repair system entirely from bootstrapped artifacts —
	// mined weighted rules plus the loop-cleaned master — and fix a dirty
	// record.
	sys, err := certainfix.New(res.Rules, res.Cleaned, certainfix.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest certain region from mined rules: validate %v\n",
		sys.Regions()[0].ZSet.Names(schema))

	dirty, truth := ds.Inputs[0], ds.Truths[0]
	fixRes, err := sys.Fix(dirty, certainfix.SimulatedUser{Truth: truth})
	if err != nil {
		log.Fatal(err)
	}
	_, before, _ := certainfix.Score(dirty, truth, dirty, nil)
	_, recall, _ := certainfix.Score(dirty, truth, fixRes.Tuple, nil)
	fmt.Printf("fixed a dirty record in %d round(s); error recall %.2f (was %.2f)\n",
		fixRes.Rounds, recall, before)
	if !fixRes.Tuple.Equal(truth) {
		log.Fatal("record should be fully corrected")
	}
	fmt.Println("record fully matches the ground truth")
}

// coveredByMined reports whether some mined dependency derives rhs from a
// subset of lhs.
func coveredByMined(lhs []int, rhs int, deps []certainfix.MinedDependency) bool {
	for _, d := range deps {
		if d.RHS != rhs {
			continue
		}
		subset := true
		for _, a := range d.LHS {
			in := false
			for _, b := range lhs {
				if a == b {
					in = true
					break
				}
			}
			if !in {
				subset = false
				break
			}
		}
		if subset {
			return true
		}
	}
	return false
}

func fieldNames(ds *datagen.Dataset) []string {
	s := ds.Master.Schema()
	names := make([]string, s.Arity())
	for i := range names {
		names[i] = s.Attr(i).Name
	}
	return names
}
