// Paper walkthrough: replays the running example of the paper (Fig. 1,
// Examples 1–13) step by step — the supplier tuples t1–t4, the master
// tuples s1/s2, the rule set Σ0, the conflict on t3, and the interactive
// fix of t1.
//
// Run with: go run ./examples/paperwalkthrough
package main

import (
	"fmt"
	"log"

	"repro/internal/paperex"
	"repro/pkg/certainfix"
)

func main() {
	sigma := paperex.Sigma0()
	sys, err := certainfix.New(sigma, paperex.MasterRelation(), certainfix.Options{})
	if err != nil {
		log.Fatal(err)
	}
	schema := sys.Schema()

	fmt.Println("Σ0 (Example 11):")
	fmt.Println(sigma)

	// Example 1: t1 is inconsistent (AC = 020 but city = Edi) — and
	// constraint-based repair cannot tell which side is wrong.
	t1 := paperex.InputT1()
	fmt.Println("\nt1 (dirty):", t1)

	// Example 12: assure t1[zip]; TransFix corrects AC and str and
	// validates city.
	fixed, covered, changed, err := sys.RepairOnce(t1, []int{schema.MustPos("zip")})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after TransFix with zip assured:", fixed)
	fmt.Printf("rules changed %d attributes; validated: %v\n", len(changed), covered.Names(schema))

	// Example 13: the next suggestion is {phn, type, item}.
	s := sys.Suggest(fixed, covered.Positions())
	var names []string
	for _, p := range s {
		names = append(names, schema.Attr(p).Name)
	}
	fmt.Println("next suggestion (Example 13):", names)

	// Examples 5/10: t3's zip points at s1 while its phone points at s2 —
	// validating both exposes the conflict, which certain-fix semantics
	// refuses to resolve by guessing.
	t3 := paperex.InputT3()
	_, _, _, err = sys.RepairOnce(t3, schema.MustPosList("zip", "AC", "phn", "type"))
	fmt.Println("\nt3 with zip AND phone assured:", err)

	// Example 9: the certain region (zip, phn, type, item) — one
	// interactive round fixes t1 completely.
	truth := certainfix.StringTuple(
		"Robert", "Brady", "131", "079172485", "2",
		"51 Elm Row", "Edi", "EH7 4AH", "CD")
	res, err := sys.Fix(paperex.InputT1(), certainfix.SimulatedUser{Truth: truth})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninteractive fix of t1: %d round(s)\n", res.Rounds)
	fmt.Println("final tuple:", res.Tuple)

	// Example 5: nothing applies to t4 — the system never invents values.
	res, err = sys.Fix(paperex.InputT4(), certainfix.SimulatedUser{Truth: paperex.InputT4()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nt4 (no master counterpart): %d rounds, rules fixed %d attributes\n",
		res.Rounds, res.AutoFixed.Len())
}
