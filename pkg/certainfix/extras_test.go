package certainfix_test

import (
	"fmt"
	"testing"

	"repro/internal/paperex"
	"repro/pkg/certainfix"
)

func TestSessionThroughPublicAPI(t *testing.T) {
	sys := paperSystem(t, certainfix.Options{})
	truth := certainfix.StringTuple(
		"Robert", "Brady", "131", "079172485", "2",
		"51 Elm Row", "Edi", "EH7 4AH", "CD")
	sess, err := sys.NewSession(paperex.InputT1())
	if err != nil {
		t.Fatal(err)
	}
	for !sess.Done() {
		attrs := sess.Suggested()
		values := make([]certainfix.Value, len(attrs))
		for i, p := range attrs {
			values[i] = truth[p]
		}
		if err := sess.Provide(attrs, values); err != nil {
			t.Fatal(err)
		}
	}
	if res := sess.Result(); !res.Completed || !res.Tuple.Equal(truth) {
		t.Fatalf("res = %+v", res)
	}
}

func TestRepairRelation(t *testing.T) {
	sys := paperSystem(t, certainfix.Options{})
	r := sys.Schema()
	rel := certainfix.NewRelation(r)
	rel.MustAppend(paperex.InputT1(), paperex.InputT2(), paperex.InputT4())

	out, fixed, conflicted, err := sys.RepairRelation(rel, []int{r.MustPos("zip")})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("output length %d", out.Len())
	}
	if fixed == 0 {
		t.Fatal("expected some fixed cells")
	}
	if len(conflicted) != 0 {
		t.Fatalf("unexpected conflicts: %v", conflicted)
	}
	// t1's AC corrected via zip → s1.
	if out.Tuple(0)[r.MustPos("AC")].Str() != "131" {
		t.Fatalf("t1 AC = %v", out.Tuple(0)[r.MustPos("AC")])
	}
	// t4 untouched (zip not in master).
	if !out.Tuple(2).Equal(paperex.InputT4()) {
		t.Fatal("t4 must be unchanged")
	}
	// Inputs untouched.
	if rel.Tuple(0)[r.MustPos("AC")].Str() != "020" {
		t.Fatal("RepairRelation must not mutate inputs")
	}
}

func TestRepairRelationConflict(t *testing.T) {
	sys := paperSystem(t, certainfix.Options{})
	r := sys.Schema()
	rel := certainfix.NewRelation(r)
	rel.MustAppend(paperex.InputT3()) // zip→s1 vs phone→s2

	out, _, conflicted, err := sys.RepairRelation(rel, r.MustPosList("zip", "AC", "phn", "type"))
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicted) != 1 || conflicted[0] != 0 {
		t.Fatalf("conflicted = %v, want [0]", conflicted)
	}
	if !out.Tuple(0).Equal(paperex.InputT3()) {
		t.Fatal("conflicted tuples must be copied unchanged")
	}
}

func TestDiscoverRulesPublicAPI(t *testing.T) {
	// Mine rules from the paper's master data with R aligned to Rm.
	rm := paperex.SchemaRm()
	r := certainfix.StringSchema("R", rm.AttrNames()...)
	rules, deps, err := certainfix.DiscoverRules(r, paperex.MasterRelation(), certainfix.DiscoverOptions{
		MinSupport: 2, MinDistinctRatio: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rules.Len() == 0 || len(deps) != rules.Len() {
		t.Fatalf("rules=%d deps=%d", rules.Len(), len(deps))
	}
	// zip determines city in {s1, s2}.
	found := false
	for _, ru := range rules.Rules() {
		if len(ru.LHS()) == 1 && ru.LHS()[0] == r.MustPos("zip") && ru.RHS() == r.MustPos("city") {
			found = true
		}
	}
	if !found {
		t.Fatal("zip → city should be mined from {s1, s2}")
	}
}

// Discover must bootstrap a working system from a dirty master with no
// hand-written Σ: the loop repairs the noise it can prove against group
// majorities, the mined rules come back exact on the cleaned data, and
// rules + cleaned master feed straight into New.
func TestDiscoverBootstrapLoop(t *testing.T) {
	rm := certainfix.StringSchema("Rm", "id", "name", "city")
	rel := certainfix.NewRelation(rm)
	for i := 0; i < 300; i++ {
		id := i % 30
		rel.MustAppend(certainfix.StringTuple(
			fmt.Sprintf("id%d", id), fmt.Sprintf("name%d", id), fmt.Sprintf("city%d", id%7)))
	}
	// Corrupt a handful of name cells; each id group of 10 keeps a 90%
	// majority, comfortably above RepairMajority.
	for _, row := range []int{3, 47, 112, 200, 258} {
		rel.Tuples()[row][1] = certainfix.String("corrupt" + rel.Tuple(row)[1].Str())
	}
	r := certainfix.StringSchema("R", rm.AttrNames()...)
	res, err := certainfix.Discover(r, rel, certainfix.DiscoverLoopOptions{
		Options: certainfix.DiscoverOptions{MaxLHS: 1, MinSupport: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) == 0 || res.Rounds[0].CellsRepaired != 5 {
		t.Fatalf("expected the 5 corrupted cells repaired in round 1, got %+v", res.Rounds)
	}
	var idName *certainfix.Rule
	for _, ru := range res.Rules.Rules() {
		if len(ru.LHS()) == 1 && ru.LHS()[0] == 0 && ru.RHS() == 1 {
			idName = ru
		}
	}
	if idName == nil {
		t.Fatalf("id → name not mined: %v", res.Rules)
	}
	if idName.Confidence() != 1 {
		t.Fatalf("after repair id → name should be exact, got confidence %v", idName.Confidence())
	}
	// The bootstrapped system fixes a dirty input against the cleaned
	// master.
	sys, err := certainfix.New(res.Rules, res.Cleaned, certainfix.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dirty := certainfix.StringTuple("id4", "wrong", "nowhere")
	fixed, _, changed, err := sys.RepairOnce(dirty, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) == 0 || fixed[1].Str() != "name4" || fixed[2].Str() != "city4" {
		t.Fatalf("bootstrapped system should fix name/city from id: %v (changed %v)", fixed, changed)
	}
}

func TestScore(t *testing.T) {
	input := certainfix.StringTuple("a", "b")
	truth := certainfix.StringTuple("A", "B")
	repaired := certainfix.StringTuple("A", "b")
	p, r, f1 := certainfix.Score(input, truth, repaired, nil)
	if p != 1 || r != 0.5 {
		t.Fatalf("p=%v r=%v", p, r)
	}
	if f1 <= 0.6 || f1 >= 0.7 {
		t.Fatalf("f1=%v", f1)
	}
}
