package certainfix

import (
	"repro/internal/fix"
	"repro/internal/master"
	"repro/internal/monitor"
)

// Typed error sentinels, for errors.Is. All System entry points wrap
// their failures so these match across the package boundary.
var (
	// ErrSessionDone reports Provide on a finished session.
	ErrSessionDone = monitor.ErrSessionDone
	// ErrArityMismatch reports tuples or attribute/value lists whose
	// shape does not fit the schema.
	ErrArityMismatch = monitor.ErrArityMismatch
	// ErrBadToken reports a session token that fails structural
	// validation against the resuming system.
	ErrBadToken = monitor.ErrBadState
	// ErrEpochEvicted reports a Resume whose pinned master epoch is no
	// longer retained in the snapshot ring; resume with RebaseToHead or
	// enlarge the ring (WithMasterHistory).
	ErrEpochEvicted = master.ErrEpochEvicted
	// ErrInconsistent reports that no certain fix exists under the
	// asserted values: applicable rule/master pairs conflict. Concrete
	// failures are *ConflictError values carrying the disputed attribute
	// and candidate values; errors.Is(err, ErrInconsistent) matches them.
	ErrInconsistent = fix.ErrInconsistent
)

// ConflictError carries the witness of an inconsistency: the attribute
// two applicable rule/master pairs disagree on and the conflicting
// values. Retrieve it with errors.As; it matches ErrInconsistent under
// errors.Is.
type ConflictError = fix.ConflictError
