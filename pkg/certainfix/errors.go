package certainfix

import (
	"repro/internal/fix"
	"repro/internal/master"
	"repro/internal/monitor"
	"repro/internal/wal"
)

// Typed error sentinels, for errors.Is. All System entry points wrap
// their failures so these match across the package boundary.
var (
	// ErrSessionDone reports Provide on a finished session.
	ErrSessionDone = monitor.ErrSessionDone
	// ErrArityMismatch reports tuples or attribute/value lists whose
	// shape does not fit the schema.
	ErrArityMismatch = monitor.ErrArityMismatch
	// ErrBadToken reports a session token that fails structural
	// validation against the resuming system.
	ErrBadToken = monitor.ErrBadState
	// ErrEpochEvicted reports a Resume whose pinned master epoch is no
	// longer retained in the snapshot ring; resume with RebaseToHead or
	// enlarge the ring (WithMasterHistory).
	ErrEpochEvicted = master.ErrEpochEvicted
	// ErrInconsistent reports that no certain fix exists under the
	// asserted values: applicable rule/master pairs conflict. Concrete
	// failures are *ConflictError values carrying the disputed attribute
	// and candidate values; errors.Is(err, ErrInconsistent) matches them.
	ErrInconsistent = fix.ErrInconsistent
	// ErrMasterBuild reports that master-data construction (New) or a
	// delta (UpdateMaster) rejected the data. Concrete failures are
	// *MasterBuildError values carrying the failing tuple's shard, id and
	// key context.
	ErrMasterBuild = master.ErrMasterBuild
	// ErrWALCorrupt reports unrecoverable write-ahead-log corruption
	// found while recovering a WithWAL system: a bad frame in the middle
	// of the log, an epoch gap, or a checksum-valid record that does not
	// decode. (A torn tail — what a crash mid-write leaves — is repaired
	// silently and reported in DurabilityStats, never as an error.)
	// Concrete failures are *WALCorruptError values.
	ErrWALCorrupt = wal.ErrWALCorrupt
)

// ConflictError carries the witness of an inconsistency: the attribute
// two applicable rule/master pairs disagree on and the conflicting
// values. Retrieve it with errors.As; it matches ErrInconsistent under
// errors.Is.
type ConflictError = fix.ConflictError

// MasterBuildError carries the context of a master build or delta
// failure: the failing tuple's shard, its id, and a bounded rendering of
// its key. Retrieve it with errors.As; it matches ErrMasterBuild under
// errors.Is.
type MasterBuildError = master.BuildError

// WALCorruptError locates write-ahead-log corruption: the segment file,
// the byte offset, and what was found there. Retrieve it with errors.As;
// it matches ErrWALCorrupt under errors.Is.
type WALCorruptError = wal.CorruptError
