package certainfix_test

// VerifyFix at the public surface: every fix produced under WithAuth
// verifies offline against the published root with nothing but (rules,
// result, root); any single-cell tampering — of the fixed tuple, the
// witnessed master tuple, the proof, or the root — is rejected; old
// results keep verifying against the root they were produced under
// after the master moves on; and provenance survives the session-token
// round trip while hostile tokens are rejected.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/authtree"
	"repro/internal/paperex"
	"repro/internal/relation"
	"repro/pkg/certainfix"
)

// paperTruth is the ground truth for paperex.InputT1 (Fig. 1's t1).
func paperTruth() certainfix.Tuple {
	return certainfix.StringTuple(
		"Robert", "Brady", "131", "079172485", "2",
		"51 Elm Row", "Edi", "EH7 4AH", "CD")
}

// cloneResult deep-copies the parts of a Result the tamper tests mutate.
func cloneResult(res certainfix.Result) certainfix.Result {
	out := res
	out.Tuple = res.Tuple.Clone()
	out.Provenance = make([]certainfix.Witness, len(res.Provenance))
	for i, w := range res.Provenance {
		out.Provenance[i] = w
		out.Provenance[i].Master = w.Master.Clone()
		if w.Proof != nil {
			out.Provenance[i].Proof = &certainfix.Proof{
				Key:      w.Proof.Key,
				Entries:  append([]authtree.Entry(nil), w.Proof.Entries...),
				Siblings: append([]authtree.Hash(nil), w.Proof.Siblings...),
			}
		}
	}
	return out
}

func authFix(t *testing.T, sys *certainfix.System, dirty certainfix.Tuple) certainfix.Result {
	t.Helper()
	res, err := sys.Fix(dirty, certainfix.SimulatedUser{Truth: paperTruth()})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestVerifyFixEndToEnd(t *testing.T) {
	sys := paperSystem(t, certainfix.Options{Auth: true})
	root, ok := sys.MasterRoot()
	if !ok {
		t.Fatal("MasterRoot unavailable under Auth")
	}
	sigma := paperex.Sigma0()

	res := authFix(t, sys, paperex.InputT1())
	if !res.Completed {
		t.Fatal("fix did not complete")
	}
	if res.Root != root {
		t.Fatalf("result root %q, published root %q", res.Root, root)
	}
	if res.AutoFixed.Len() == 0 {
		t.Fatal("fix exercised no rules — nothing to verify")
	}
	if len(res.Provenance) != res.AutoFixed.Len() {
		t.Fatalf("%d witnesses for %d auto-fixed attributes", len(res.Provenance), res.AutoFixed.Len())
	}
	for _, w := range res.Provenance {
		if w.Proof == nil {
			t.Fatalf("witness for attribute %d carries no proof", w.Attr)
		}
	}
	if err := certainfix.VerifyFix(sigma, &res, root); err != nil {
		t.Fatalf("genuine fix rejected: %v", err)
	}

	// Single-cell tampering of any component must fail, and never panic.
	expectReject := func(t *testing.T, bad certainfix.Result, root string) {
		t.Helper()
		err := certainfix.VerifyFix(sigma, &bad, root)
		if err == nil {
			t.Fatal("tampered fix verified")
		}
		if !errors.Is(err, certainfix.ErrVerifyFailed) {
			t.Fatalf("rejection does not match ErrVerifyFailed: %v", err)
		}
	}
	t.Run("master-cell", func(t *testing.T) {
		bad := cloneResult(res)
		bad.Provenance[0].Master[0] = relation.String("evil")
		expectReject(t, bad, root)
	})
	t.Run("fixed-value", func(t *testing.T) {
		bad := cloneResult(res)
		bad.Tuple[bad.Provenance[0].Attr] = relation.String("evil")
		expectReject(t, bad, root)
	})
	t.Run("proof-entry", func(t *testing.T) {
		bad := cloneResult(res)
		bad.Provenance[0].Proof.Entries[0].VHash[0] ^= 1
		expectReject(t, bad, root)
	})
	t.Run("proof-sibling", func(t *testing.T) {
		bad := cloneResult(res)
		if len(bad.Provenance[0].Proof.Siblings) == 0 {
			t.Skip("single-leaf tree has no siblings")
		}
		bad.Provenance[0].Proof.Siblings[0][0] ^= 1
		expectReject(t, bad, root)
	})
	t.Run("proof-dropped", func(t *testing.T) {
		bad := cloneResult(res)
		bad.Provenance[0].Proof = nil
		expectReject(t, bad, root)
	})
	t.Run("wrong-root", func(t *testing.T) {
		bad := cloneResult(res)
		flipped := []byte(root)
		if flipped[0] == '0' {
			flipped[0] = '1'
		} else {
			flipped[0] = '0'
		}
		expectReject(t, bad, string(flipped))
	})
	t.Run("witness-removed", func(t *testing.T) {
		bad := cloneResult(res)
		bad.Provenance = bad.Provenance[1:]
		expectReject(t, bad, root)
	})
	t.Run("witness-misattributed", func(t *testing.T) {
		bad := cloneResult(res)
		foreign := -1
		for _, p := range res.UserValidated.Positions() {
			if !res.AutoFixed.Has(p) {
				foreign = p
				break
			}
		}
		if foreign < 0 {
			t.Skip("every attribute is auto-fixed")
		}
		bad.Provenance[0].Attr = foreign
		expectReject(t, bad, root)
	})
	t.Run("duplicate-witness", func(t *testing.T) {
		bad := cloneResult(res)
		bad.Provenance = append(bad.Provenance, bad.Provenance[0])
		expectReject(t, bad, root)
	})
}

// TestVerifyFixProperty runs randomized corruptions of the ground truth
// through the full interactive fix and requires every produced result to
// verify against the published root.
func TestVerifyFixProperty(t *testing.T) {
	sys := paperSystem(t, certainfix.Options{Auth: true})
	root, _ := sys.MasterRoot()
	sigma := paperex.Sigma0()
	truth := paperTruth()
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		dirty := truth.Clone()
		for _, p := range rng.Perm(len(dirty))[:1+rng.Intn(len(dirty)-1)] {
			dirty[p] = relation.String(fmt.Sprintf("junk%d", rng.Intn(5)))
		}
		res := authFix(t, sys, dirty)
		if res.Root != root {
			t.Fatalf("trial %d: result root %q, published %q", trial, res.Root, root)
		}
		if err := certainfix.VerifyFix(sigma, &res, root); err != nil {
			t.Fatalf("trial %d (dirty %v): %v", trial, dirty, err)
		}
	}
}

// TestVerifyFixAcrossMasterUpdate pins the root-rotation semantics: a
// result verifies against the root it was produced under — no other.
func TestVerifyFixAcrossMasterUpdate(t *testing.T) {
	sys := paperSystem(t, certainfix.Options{Auth: true})
	sigma := paperex.Sigma0()
	root1, _ := sys.MasterRoot()
	res1 := authFix(t, sys, paperex.InputT1())

	add := paperex.MasterRelation().Tuples()[0].Clone()
	add[len(add)-1] = relation.String("XX")
	if _, err := sys.UpdateMaster([]certainfix.Tuple{add}, nil); err != nil {
		t.Fatal(err)
	}
	root2, ok := sys.MasterRoot()
	if !ok || root2 == root1 {
		t.Fatalf("master update did not rotate the root: %q → %q", root1, root2)
	}

	if err := certainfix.VerifyFix(sigma, &res1, root1); err != nil {
		t.Fatalf("old result no longer verifies against its own root: %v", err)
	}
	if err := certainfix.VerifyFix(sigma, &res1, root2); !errors.Is(err, certainfix.ErrVerifyFailed) {
		t.Fatalf("old result verified against the new root: %v", err)
	}

	res2 := authFix(t, sys, paperex.InputT1())
	if res2.Root != root2 {
		t.Fatalf("new result root %q, head root %q", res2.Root, root2)
	}
	if err := certainfix.VerifyFix(sigma, &res2, root2); err != nil {
		t.Fatalf("new result rejected: %v", err)
	}
}

// TestProvenanceSurvivesSessionToken suspends and resumes the session
// through its JSON token after every round; the final result must carry
// full, verifiable provenance. Hostile tokens with out-of-range witness
// ids must be rejected at Resume.
func TestProvenanceSurvivesSessionToken(t *testing.T) {
	sys := paperSystem(t, certainfix.Options{Auth: true})
	truth := paperTruth()

	sess, err := sys.Begin(nil, paperex.InputT1())
	if err != nil {
		t.Fatal(err)
	}
	var token []byte
	for !sess.Done() {
		attrs := sess.Suggested()
		vals := make([]certainfix.Value, len(attrs))
		for i, p := range attrs {
			vals[i] = truth[p]
		}
		if token, err = sess.MarshalBinary(); err != nil {
			t.Fatal(err)
		}
		if sess, err = sys.Resume(nil, token); err != nil {
			t.Fatal(err)
		}
		if err := sess.Provide(attrs, vals); err != nil {
			t.Fatal(err)
		}
	}
	res := sess.Result()
	if !res.Completed || res.AutoFixed.Len() == 0 {
		t.Fatalf("token-churned session: completed=%v autofixed=%v", res.Completed, res.AutoFixed.Positions())
	}
	root, _ := sys.MasterRoot()
	if err := certainfix.VerifyFix(paperex.Sigma0(), &res, root); err != nil {
		t.Fatalf("resumed session's provenance rejected: %v", err)
	}

	// A hostile token asserting a witness id beyond the master must be
	// rejected structurally, before any proof is ever materialized.
	if token, err = sess.MarshalBinary(); err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(token, &raw); err != nil {
		t.Fatal(err)
	}
	var witnesses []map[string]any
	if err := json.Unmarshal(raw["witnesses"], &witnesses); err != nil {
		t.Fatalf("token has no witnesses array: %v", err)
	}
	witnesses[0]["masterId"] = 1 << 30
	evil, err := json.Marshal(witnesses)
	if err != nil {
		t.Fatal(err)
	}
	raw["witnesses"] = evil
	hostile, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Resume(nil, hostile); !errors.Is(err, certainfix.ErrBadToken) {
		t.Fatalf("hostile witness id = %v, want ErrBadToken", err)
	}
}
