package certainfix_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/paperex"
	"repro/pkg/certainfix"
)

// truthT2 is the ground truth for t2: s1's address block given
// (type, AC, phn), the remainder as entered.
func truthT2() certainfix.Tuple {
	return certainfix.StringTuple(
		"Robert", "Brady", "131", "6884563", "1",
		"51 Elm Row", "Edi", "EH7 4AH", "CD")
}

func newPaperSystem(t *testing.T, opts ...certainfix.Option) *certainfix.System {
	t.Helper()
	sys, err := certainfix.New(paperex.Sigma0(), paperex.MasterRelation(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// driveToEnd answers every suggestion from truth until the session is
// done.
func driveToEnd(t *testing.T, sess *certainfix.FixSession, truth certainfix.Tuple) certainfix.Result {
	t.Helper()
	for !sess.Done() {
		provideRound(t, sess, truth)
	}
	return sess.Result()
}

func provideRound(t *testing.T, sess *certainfix.FixSession, truth certainfix.Tuple) {
	t.Helper()
	attrs := sess.Suggested()
	values := make([]certainfix.Value, len(attrs))
	for i, p := range attrs {
		values[i] = truth[p]
	}
	if err := sess.Provide(attrs, values); err != nil {
		t.Fatal(err)
	}
}

func canonical(t *testing.T, r certainfix.Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestBeginMatchesFix: driving a FixSession produces the same result as
// the callback Fix (which is now a wrapper over sessions).
func TestBeginMatchesFix(t *testing.T) {
	sys := newPaperSystem(t)
	truth := truthT2()
	viaFix, err := sys.Fix(paperex.InputT2(), certainfix.SimulatedUser{Truth: truth})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sys.Begin(context.Background(), paperex.InputT2())
	if err != nil {
		t.Fatal(err)
	}
	viaSession := driveToEnd(t, sess, truth)
	if canonical(t, viaSession) != canonical(t, viaFix) {
		t.Fatalf("session result diverged from Fix:\n got  %s\n want %s",
			canonical(t, viaSession), canonical(t, viaFix))
	}
}

// TestTokenResumeInSeparateSystem is the headline acceptance scenario: a
// session serialized after round 1 and resumed in a *separate* System
// instance (same rules + master) produces a Result byte-identical to
// the uninterrupted Fix.
func TestTokenResumeInSeparateSystem(t *testing.T) {
	truth := truthT2()
	sysA := newPaperSystem(t)
	want, err := sysA.Fix(paperex.InputT2(), certainfix.SimulatedUser{Truth: truth})
	if err != nil {
		t.Fatal(err)
	}
	if want.Rounds < 2 {
		t.Fatalf("fixture must need ≥ 2 rounds, got %d", want.Rounds)
	}

	sess, err := sysA.Begin(context.Background(), paperex.InputT2())
	if err != nil {
		t.Fatal(err)
	}
	provideRound(t, sess, truth)
	token, err := sess.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// "Different process": an independently constructed System over the
	// same rules and master relation.
	sysB := newPaperSystem(t)
	resumed, err := sysB.Resume(context.Background(), token)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Rounds() != 1 {
		t.Fatalf("resumed rounds = %d, want 1", resumed.Rounds())
	}
	got := driveToEnd(t, resumed, truth)
	if canonical(t, got) != canonical(t, want) {
		t.Fatalf("resumed result diverged:\n got  %s\n want %s",
			canonical(t, got), canonical(t, want))
	}
}

// TestResumeUnderConcurrentUpdateMaster: an UpdateMaster lands while the
// session is suspended; the resumed session re-pins its original epoch
// via the snapshot ring and finishes byte-identically to the
// uninterrupted run.
func TestResumeUnderConcurrentUpdateMaster(t *testing.T) {
	truth := truthT2()
	sys := newPaperSystem(t)
	want, err := sys.Fix(paperex.InputT2(), certainfix.SimulatedUser{Truth: truth})
	if err != nil {
		t.Fatal(err)
	}

	sess, err := sys.Begin(context.Background(), paperex.InputT2())
	if err != nil {
		t.Fatal(err)
	}
	e0 := sess.Epoch()
	provideRound(t, sess, truth)
	token, err := sess.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Master moves on: delete both master tuples, leaving the head with
	// an empty Dm — a session observing the head could fix nothing.
	epoch, err := sys.UpdateMaster(nil, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if epoch == e0 || sys.MasterLen() != 0 {
		t.Fatalf("head epoch=%d |Dm|=%d after update", epoch, sys.MasterLen())
	}

	resumed, err := sys.Resume(context.Background(), token)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Epoch() != e0 {
		t.Fatalf("resumed epoch = %d, want original %d", resumed.Epoch(), e0)
	}
	got := driveToEnd(t, resumed, truth)
	if canonical(t, got) != canonical(t, want) {
		t.Fatalf("resume under update diverged:\n got  %s\n want %s",
			canonical(t, got), canonical(t, want))
	}
}

// TestResumeEvictionAndRebase: with a single-slot snapshot ring the
// original epoch is evicted by the next update; Resume fails with
// ErrEpochEvicted and RebaseToHead is the documented escape hatch.
func TestResumeEvictionAndRebase(t *testing.T) {
	truth := truthT2()
	sys := newPaperSystem(t, certainfix.WithMasterHistory(1))
	sess, err := sys.Begin(context.Background(), paperex.InputT2())
	if err != nil {
		t.Fatal(err)
	}
	provideRound(t, sess, truth)
	token, err := sess.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := sys.UpdateMaster([]certainfix.Tuple{certainfix.StringTuple(
		"Jane", "Doe", "999", "5551234", "070000000",
		"1 Test St", "Tst", "ZZ1 1ZZ", "01/01/70", "F")}, nil); err != nil {
		t.Fatal(err)
	}

	if _, err := sys.Resume(context.Background(), token); !errors.Is(err, certainfix.ErrEpochEvicted) {
		t.Fatalf("resume after eviction = %v, want ErrEpochEvicted", err)
	}
	resumed, err := sys.Resume(context.Background(), token, certainfix.RebaseToHead())
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Epoch() != sys.MasterEpoch() {
		t.Fatalf("rebased epoch = %d, want head %d", resumed.Epoch(), sys.MasterEpoch())
	}
	res := driveToEnd(t, resumed, truth)
	if !res.Completed || !res.Tuple.Equal(truth) {
		t.Fatalf("rebased session: completed=%v tuple=%v", res.Completed, res.Tuple)
	}
}

// TestResumeBadToken: garbage and structurally invalid tokens fail with
// ErrBadToken.
func TestResumeBadToken(t *testing.T) {
	sys := newPaperSystem(t)
	if _, err := sys.Resume(context.Background(), []byte("{not json")); !errors.Is(err, certainfix.ErrBadToken) {
		t.Fatalf("garbage token = %v, want ErrBadToken", err)
	}
	if _, err := sys.Resume(context.Background(), []byte(`{"v":1,"tuple":["only-one"]}`)); !errors.Is(err, certainfix.ErrBadToken) {
		t.Fatalf("short-tuple token = %v, want ErrBadToken", err)
	}
	if _, err := sys.Resume(context.Background(), []byte(`{"v":99}`)); !errors.Is(err, certainfix.ErrBadToken) {
		t.Fatalf("future-version token = %v, want ErrBadToken", err)
	}
}

// TestFunctionalOptions: option constructors configure the system, and
// the deprecated Options struct still works in the variadic slot.
func TestFunctionalOptions(t *testing.T) {
	capped := newPaperSystem(t, certainfix.WithMaxRounds(1))
	sess, err := capped.Begin(context.Background(), paperex.InputT4())
	if err != nil {
		t.Fatal(err)
	}
	res := driveToEnd(t, sess, paperex.InputT4())
	if res.Rounds != 1 || res.Completed {
		t.Fatalf("WithMaxRounds(1): rounds=%d completed=%v", res.Rounds, res.Completed)
	}

	shim := newPaperSystem(t, certainfix.Options{MaxRounds: 1})
	res2, err := shim.Fix(paperex.InputT4(), certainfix.SimulatedUser{Truth: paperex.InputT4()})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rounds != 1 || res2.Completed {
		t.Fatalf("Options shim: rounds=%d completed=%v", res2.Rounds, res2.Completed)
	}

	// Later options override earlier ones.
	mixed := newPaperSystem(t, certainfix.Options{MaxRounds: 1}, certainfix.WithMaxRounds(0))
	res3, err := mixed.Fix(paperex.InputT4(), certainfix.SimulatedUser{Truth: paperex.InputT4()})
	if err != nil || !res3.Completed {
		t.Fatalf("override: res=%+v err=%v", res3, err)
	}
}

// TestContextThreading: cancellation is observed by FixContext,
// FixSession.Provide, FixBatchContext and RepairBatchContext.
func TestContextThreading(t *testing.T) {
	sys := newPaperSystem(t)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := sys.FixContext(cancelled, paperex.InputT1(), certainfix.SimulatedUser{Truth: truthT2()}); !errors.Is(err, context.Canceled) {
		t.Fatalf("FixContext = %v, want context.Canceled", err)
	}

	sess, err := sys.Begin(cancelled, paperex.InputT1())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Provide([]int{0}, []certainfix.Value{certainfix.String("x")}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Provide under cancelled ctx = %v, want context.Canceled", err)
	}

	inputs := []certainfix.Tuple{paperex.InputT4()}
	if _, err := sys.FixBatchContext(cancelled, inputs, func(i int) certainfix.User {
		return certainfix.SimulatedUser{Truth: inputs[i]}
	}, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("FixBatchContext = %v, want context.Canceled", err)
	}

	if _, err := sys.RepairBatchContext(cancelled, inputs, nil, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("RepairBatchContext = %v, want context.Canceled", err)
	}

	// FixStream drains and closes on cancellation.
	in := make(chan certainfix.StreamRequest)
	out := sys.FixStream(cancelled, in, 2)
	if _, ok := <-out; ok {
		t.Fatal("stream under cancelled ctx must close without results")
	}
}

// TestTypedSentinelsSurface: the re-exported sentinels match errors from
// the public entry points.
func TestTypedSentinelsSurface(t *testing.T) {
	sys := newPaperSystem(t)

	if _, err := sys.Begin(context.Background(), certainfix.StringTuple("short")); !errors.Is(err, certainfix.ErrArityMismatch) {
		t.Fatalf("Begin short tuple = %v, want ErrArityMismatch", err)
	}

	sess, err := sys.Begin(context.Background(), paperex.InputT1())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Provide(nil, nil); err != nil { // abort
		t.Fatal(err)
	}
	err = sess.Provide([]int{0}, []certainfix.Value{certainfix.Null})
	if !errors.Is(err, certainfix.ErrSessionDone) {
		t.Fatalf("Provide after abort = %v, want ErrSessionDone", err)
	}

	// t3 with both key groups validated: ϕ-rules disagree → the repair
	// path surfaces ErrInconsistent with ConflictError details.
	r := sys.Schema()
	_, _, _, err = sys.RepairOnce(paperex.InputT3(), r.MustPosList("zip", "AC", "phn", "type"))
	if !errors.Is(err, certainfix.ErrInconsistent) {
		t.Fatalf("conflicting repair = %v, want ErrInconsistent", err)
	}
	var ce *certainfix.ConflictError
	if !errors.As(err, &ce) || len(ce.Values) < 2 {
		t.Fatalf("conflict details missing: %v", err)
	}
}
