package certainfix_test

import (
	"strings"
	"testing"

	"repro/pkg/certainfix"
)

// updateFixture: an order/catalog system whose catalog initially lacks
// sku-2.
func updateFixture(t *testing.T) *certainfix.System {
	t.Helper()
	r := certainfix.StringSchema("order", "sku", "price", "desc")
	rm := certainfix.StringSchema("catalog", "sku", "price", "desc")
	rules, err := certainfix.ParseRules(r, rm, `
rule price: (sku ; sku) -> (price ; price)
rule desc:  (sku ; sku) -> (desc ; desc)
`)
	if err != nil {
		t.Fatal(err)
	}
	masterRel := certainfix.NewRelation(rm)
	if err := masterRel.Append(certainfix.StringTuple("sku-1", "9.99", "widget")); err != nil {
		t.Fatal(err)
	}
	sys, err := certainfix.New(rules, masterRel, certainfix.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestUpdateMasterEndToEnd(t *testing.T) {
	sys := updateFixture(t)
	dirty := certainfix.StringTuple("sku-2", "0.00", "junk")

	// Before the update: the catalog cannot repair sku-2.
	fixed, _, changed, err := sys.RepairOnce(dirty, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 || !fixed.Equal(dirty) {
		t.Fatalf("repair against stale catalog changed %v", changed)
	}
	if sys.MasterEpoch() != 0 || sys.MasterLen() != 1 {
		t.Fatalf("fresh system: epoch %d |Dm| %d, want 0 and 1", sys.MasterEpoch(), sys.MasterLen())
	}

	// Publish the catalog correction.
	epoch, err := sys.UpdateMaster([]certainfix.Tuple{certainfix.StringTuple("sku-2", "4.50", "gizmo")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || sys.MasterEpoch() != 1 || sys.MasterLen() != 2 {
		t.Fatalf("after update: epoch %d/%d |Dm| %d", epoch, sys.MasterEpoch(), sys.MasterLen())
	}

	// The same repair now cascades price and desc.
	fixed, z, changed, err := sys.RepairOnce(dirty, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 2 || z.Len() != 3 {
		t.Fatalf("repair after update: changed %v validated %v", changed, z.Positions())
	}
	if fixed[1].Str() != "4.50" || fixed[2].Str() != "gizmo" {
		t.Fatalf("repair after update produced %v", fixed)
	}

	// Deleting the seed tuple (swap-remove) keeps the system consistent.
	if _, err := sys.UpdateMaster(nil, []int{0}); err != nil {
		t.Fatal(err)
	}
	if sys.MasterLen() != 1 {
		t.Fatalf("|Dm| after delete = %d, want 1", sys.MasterLen())
	}
	fixed, _, changed, err = sys.RepairOnce(certainfix.StringTuple("sku-1", "x", "y"), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 {
		t.Fatalf("deleted sku-1 still repairs: %v -> %v", changed, fixed)
	}
}

func TestUpdateMasterValidation(t *testing.T) {
	sys := updateFixture(t)
	if _, err := sys.UpdateMaster(nil, []int{5}); err == nil {
		t.Fatal("out-of-range delete must error")
	}
	if _, err := sys.UpdateMaster([]certainfix.Tuple{certainfix.StringTuple("just-sku")}, nil); err == nil {
		t.Fatal("arity mismatch must error")
	}
	if sys.MasterEpoch() != 0 {
		t.Fatal("failed updates must not publish")
	}
}

// TestUpdateMasterSessionIsolation: a step-wise session started before an
// update completes on its pinned snapshot; a session started after sees
// the new catalog.
func TestUpdateMasterSessionIsolation(t *testing.T) {
	sys := updateFixture(t)
	dirty := certainfix.StringTuple("sku-2", "0.00", "junk")

	before, err := sys.NewSession(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.UpdateMaster([]certainfix.Tuple{certainfix.StringTuple("sku-2", "4.50", "gizmo")}, nil); err != nil {
		t.Fatal(err)
	}
	if err := before.Provide([]int{0}, []certainfix.Value{certainfix.String("sku-2")}); err != nil {
		t.Fatal(err)
	}
	if got := before.Result().AutoFixed.Len(); got != 0 {
		t.Fatalf("pre-update session auto-fixed %d attrs off a snapshot it never pinned", got)
	}

	after, err := sys.NewSession(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if err := after.Provide([]int{0}, []certainfix.Value{certainfix.String("sku-2")}); err != nil {
		t.Fatal(err)
	}
	res := after.Result()
	if res.AutoFixed.Len() != 2 || res.Tuple[2].Str() != "gizmo" {
		t.Fatalf("post-update session: autofixed=%v tuple=%v", res.AutoFixed.Positions(), res.Tuple)
	}
}

// TestUpdateMasterConcurrentWithBatch: repairs race master updates; every
// repair lands on one published epoch or the other, never between.
func TestUpdateMasterConcurrentWithBatch(t *testing.T) {
	sys := updateFixture(t)
	inputs := make([]certainfix.Tuple, 64)
	for i := range inputs {
		inputs[i] = certainfix.StringTuple("sku-2", "0.00", "junk")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := sys.UpdateMaster([]certainfix.Tuple{certainfix.StringTuple("sku-2", "4.50", "gizmo")}, nil); err != nil {
			t.Errorf("concurrent update: %v", err)
		}
	}()
	repairs := sys.RepairBatch(inputs, []int{0}, 4)
	<-done
	for i, rep := range repairs {
		if rep.Err != nil {
			t.Fatalf("repair %d: %v", i, rep.Err)
		}
		switch len(rep.Fixed) {
		case 0: // ran on epoch 0
			if !rep.Tuple.Equal(inputs[i]) {
				t.Fatalf("repair %d fixed nothing but mutated the tuple: %v", i, rep.Tuple)
			}
		case 2: // ran on epoch 1
			if rep.Tuple[2].Str() != "gizmo" {
				t.Fatalf("repair %d fixed against a torn catalog: %v", i, rep.Tuple)
			}
		default:
			t.Fatalf("repair %d fixed %v — a partially applied delta leaked", i, rep.Fixed)
		}
	}
}

func TestMasterDeltaHelpersInDocs(t *testing.T) {
	// Guard the doc claim that UpdateMaster never blocks fixes: a fix in
	// flight while updates publish still completes with a coherent result.
	sys := updateFixture(t)
	truth := certainfix.StringTuple("sku-1", "9.99", "widget")
	res, err := sys.Fix(certainfix.StringTuple("sku-1", "x", "y"), certainfix.SimulatedUser{Truth: truth})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || !strings.EqualFold(res.Tuple[2].Str(), "widget") {
		t.Fatalf("fix result %+v", res)
	}
}
