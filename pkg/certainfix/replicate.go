package certainfix

// Epoch shipping: follower replicas over the durable lineage. A leader
// built WithWAL already owns the authoritative epoch sequence — every
// UpdateMaster is one epoch-stamped WAL record. ServeWAL streams those
// records over HTTP past the log's durability watermark, ServeCheckpoint
// serves the newest arena image, and NewFollower builds a read-only
// System that tails the two: bootstrap from the checkpoint, apply
// shipped records through the same guarded path recovery uses, catch up
// from the checkpoint again whenever the leader truncates epochs out
// from under it. Because delta application is deterministic, a follower
// at epoch E is probe-for-probe identical to the leader at E — session
// tokens minted on either node resume on the other.
//
// The wire protocol is the WAL's own frame format (length + CRC-32C +
// varint payload, wal.AppendFrame/ReadFrame), so a shipped byte stream
// is exactly what a local tailer would read from disk. The one rule the
// frames cannot carry is the truncation rule: the leader's log holds
// (checkpointEpoch, head], so a request for epochs at or before the
// checkpoint is answered 409 {"code": "wal_truncated"} — the follower's
// cue to GET /v1/checkpoint and rebase. An empty stream is never that
// cue on its own: an empty directory cannot say "truncated".

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/master"
	"repro/internal/monitor"
	"repro/internal/wal"
)

// ErrReadOnlyReplica reports a write (UpdateMaster, Checkpoint) on a
// follower System: a replica's lineage is the leader's, and local writes
// would fork it. Send the write to the leader instead.
var ErrReadOnlyReplica = errors.New("certainfix: read-only follower replica")

// ErrReplicaDiverged reports that a shipped record contradicts the
// follower's lineage — the two nodes disagree about the same epoch.
// Unlike falling behind a truncation this is not recoverable by catching
// up; the follower stops applying and a human is needed. It surfaces in
// ReplicationStats.LastError and matches through errors.Is.
var ErrReplicaDiverged = master.ErrDivergence

// walIdleTimeout bounds how long ServeWAL holds an up-to-date stream
// open waiting for new epochs. Short enough that server shutdown (which
// waits for active handlers) stays inside its budget; followers
// reconnect immediately on a clean end of stream.
const walIdleTimeout = 2 * time.Second

// checkpointFetchTimeout bounds one GET /v1/checkpoint round trip.
const checkpointFetchTimeout = 60 * time.Second

// replicaMaxBackoff caps the follower's reconnect backoff.
const replicaMaxBackoff = 2 * time.Second

// ServeWAL is the leader half of epoch shipping: GET /v1/wal?after=E
// streams the WAL records with epoch > E as raw frames
// (wal.ReadFrame decodes them), flushing as they land and then
// long-polling the durability watermark briefly so a live follower sees
// new epochs without re-requesting. Only acknowledged records are
// shipped — under FsyncAlways a shipped record is a durable record.
// Requests for epochs the log no longer holds (truncated behind the
// checkpoint) are answered 409 {"code": "wal_truncated"}; a System
// without WithWAL answers 404 {"code": "not_durable"}.
func (s *System) ServeWAL(w http.ResponseWriter, r *http.Request) {
	if s.dur == nil {
		replyJSONError(w, http.StatusNotFound, "not_durable",
			"this system has no durable lineage to ship (start it WithWAL)")
		return
	}
	after, err := parseAfter(r.URL.Query().Get("after"))
	if err != nil {
		replyJSONError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	// The log covers (checkpointEpoch, head]: anything at or before the
	// checkpoint is gone, and only the checkpoint image can say what it
	// said. This check is the protocol's catch-up rule — without it an
	// empty stream is indistinguishable from "up to date".
	if ckpt := s.dur.Durability().CheckpointEpoch; after < ckpt {
		w.Header().Set("X-Checkpoint-Epoch", strconv.FormatUint(ckpt, 10))
		replyJSONError(w, http.StatusConflict, "wal_truncated",
			fmt.Sprintf("epochs through %d are truncated into the checkpoint; catch up from /v1/checkpoint", ckpt))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Leader-Epoch", strconv.FormatUint(s.ver.Epoch(), 10))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	last := after
	var buf []byte
	for {
		n, err := s.dur.TailWAL(last, func(rec wal.Record) error {
			var ferr error
			if buf, ferr = wal.AppendFrame(buf[:0], rec); ferr != nil {
				return ferr
			}
			if _, werr := w.Write(buf); werr != nil {
				return werr
			}
			last = rec.Epoch
			return nil
		})
		if err != nil {
			// The client went away mid-write, or a checkpoint truncated the
			// segments under the tail. Either way the stream is over; the
			// follower re-requests and the 409 check above routes it.
			return
		}
		if n > 0 && flusher != nil {
			flusher.Flush()
		}
		synced, ch := s.dur.WALSynced()
		if synced > last {
			continue
		}
		select {
		case <-r.Context().Done():
			return
		case <-ch:
			if e, _ := s.dur.WALSynced(); e <= last {
				return // watermark channel closed: the log is shutting down
			}
		case <-time.After(walIdleTimeout):
			return // clean end of stream; the follower reconnects at once
		}
	}
}

// ServeCheckpoint serves the newest durable arena checkpoint — the image
// a follower loads to bootstrap or to catch up past a truncation. The
// epoch the image is at travels in the X-Checkpoint-Epoch header; the
// body is the raw arena (master.LoadArenaBytes reads it). A System
// without WithWAL answers 404 {"code": "not_durable"}.
func (s *System) ServeCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.dur == nil {
		replyJSONError(w, http.StatusNotFound, "not_durable",
			"this system has no checkpoint to serve (start it WithWAL)")
		return
	}
	raw, epoch, err := s.dur.CheckpointImage()
	if err != nil {
		replyJSONError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Checkpoint-Epoch", strconv.FormatUint(epoch, 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(raw)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(raw)
}

// parseAfter reads the ?after= query value; absent means 0 (ship
// everything the log holds).
func parseAfter(q string) (uint64, error) {
	if q == "" {
		return 0, nil
	}
	after, err := strconv.ParseUint(q, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("certainfix: bad after epoch %q", q)
	}
	return after, nil
}

// replyJSONError writes the same {"error", "code"} shape certainfixd
// uses, so follower-side handling is uniform whether the leader endpoint
// is mounted by the daemon or by a custom mux.
func replyJSONError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"error\":%q,\"code\":%q}\n", msg, code)
}

// ReplicaState is where a follower's shipping loop currently is.
type ReplicaState string

// Follower shipping-loop states.
const (
	// ReplicaTailing: streaming records from the leader's WAL.
	ReplicaTailing ReplicaState = "tailing"
	// ReplicaCatchingUp: rebasing onto the leader's checkpoint after
	// falling behind a truncation.
	ReplicaCatchingUp ReplicaState = "catching_up"
	// ReplicaRetrying: the leader is unreachable; backing off.
	ReplicaRetrying ReplicaState = "retrying"
	// ReplicaDiverged: a shipped record contradicted the local lineage;
	// the loop has stopped and LastError says why. Terminal.
	ReplicaDiverged ReplicaState = "diverged"
	// ReplicaStopped: Close was called. Terminal.
	ReplicaStopped ReplicaState = "stopped"
)

// ReplicationStats is the observable replication state of a follower
// System; cmd/certainfixd serves it on /healthz.
type ReplicationStats struct {
	// Leader is the base URL being followed.
	Leader string `json:"leader"`
	// State is where the shipping loop is.
	State ReplicaState `json:"state"`
	// Epoch is the follower's published head.
	Epoch uint64 `json:"epoch"`
	// LeaderEpoch is the leader's head as last observed (headers and
	// shipped records); it can trail the leader's true head by a poll.
	LeaderEpoch uint64 `json:"leaderEpoch"`
	// Lag is max(LeaderEpoch-Epoch, 0) — how many observed epochs the
	// follower has yet to apply.
	Lag uint64 `json:"lag"`
	// Root is the hex Merkle root of the follower's head, empty when the
	// lineage is unauthenticated. On an authenticated lineage every
	// applied epoch was already audited against the leader's shipped root,
	// so comparing this against the leader's /v1/root is a liveness check,
	// not the integrity check — that one already happened.
	Root string `json:"root,omitempty"`
	// Catchups counts checkpoint rebases (bootstrap not included).
	Catchups int `json:"catchups"`
	// Reconnects counts stream breaks that needed a backoff retry.
	Reconnects int `json:"reconnects"`
	// LastError is the most recent shipping error, empty when healthy.
	LastError string `json:"lastError,omitempty"`
}

// Replication reports the shipping state of a follower System; ok is
// false for a System that is not following anyone.
func (s *System) Replication() (stats ReplicationStats, ok bool) {
	if s.rep == nil {
		return ReplicationStats{}, false
	}
	return s.rep.stats(), true
}

// NewFollower builds a read-only replica of the certainfixd-compatible
// leader at leaderURL: it bootstraps from GET /v1/checkpoint, then tails
// GET /v1/wal in the background, publishing each shipped epoch through
// the same guarded path recovery uses. The returned System serves every
// read — Begin, Resume, Fix, Suggest, Repair — against the replicated
// lineage; UpdateMaster fails with ErrReadOnlyReplica. Close stops the
// shipping loop.
//
// The follower owns no WAL of its own (WithWAL is rejected): the
// leader's directory is the durable truth, and a restarted follower
// re-bootstraps from the leader's checkpoint.
func NewFollower(rules *Rules, leaderURL string, opts ...Option) (*System, error) {
	var cfg Options
	for _, o := range opts {
		o.apply(&cfg)
	}
	if cfg.WALDir != "" {
		return nil, fmt.Errorf("certainfix: a follower cannot own a WAL directory — the leader's lineage is authoritative")
	}
	rp := &replica{
		leader: strings.TrimRight(leaderURL, "/"),
		rules:  rules,
		// No client-level timeout: /v1/wal intentionally long-polls. The
		// run context cancels in-flight requests on Close.
		client:  &http.Client{},
		history: cfg.MasterHistory,
		auth:    cfg.Auth,
		done:    make(chan struct{}),
		state:   ReplicaCatchingUp,
	}
	ctx, cancel := context.WithCancel(context.Background())
	rp.runCancel = cancel
	img, epoch, err := rp.fetchCheckpoint(ctx)
	if err != nil {
		cancel()
		return nil, fmt.Errorf("certainfix: follower bootstrap from %s: %w", rp.leader, err)
	}
	rp.f = master.NewFollower(img, cfg.MasterHistory)
	mon, err := monitor.NewVersioned(rules, rp.f.Versioned(), monitor.Config{
		UseBDD:        cfg.UseSuggestionCache,
		InitialRegion: cfg.InitialRegion,
		MaxRounds:     cfg.MaxRounds,
	})
	if err != nil {
		cancel()
		return nil, err
	}
	rp.leaderEpoch = epoch
	rp.state = ReplicaTailing
	sys := &System{
		sigma: rules,
		ver:   rp.f.Versioned(),
		mon:   mon,
		rep:   rp,
	}
	go rp.run(ctx)
	return sys, nil
}

// replica is the shipping loop behind a follower System.
type replica struct {
	leader    string
	rules     *Rules
	client    *http.Client
	history   int
	auth      bool
	f         *master.Follower
	runCancel context.CancelFunc
	done      chan struct{}

	mu          sync.Mutex
	state       ReplicaState
	leaderEpoch uint64
	catchups    int
	reconnects  int
	lastErr     string
}

// errWALTruncated is the client-side rendering of the leader's 409: the
// epochs after our head were truncated into the checkpoint.
var errWALTruncated = errors.New("certainfix: leader truncated the requested epochs")

// run is the shipping loop: tail until the stream ends, then decide —
// reconnect (clean end), rebase onto the checkpoint (truncation or gap),
// back off (transport failure) or stop (divergence, Close).
func (rp *replica) run(ctx context.Context) {
	defer close(rp.done)
	backoff := 50 * time.Millisecond
	for ctx.Err() == nil {
		err := rp.tailOnce(ctx)
		switch {
		case ctx.Err() != nil:
			// Close cancelled us mid-request; whatever err says, we are done.
		case err == nil:
			// Clean end of stream (the leader's idle timeout): reconnect.
			backoff = 50 * time.Millisecond
		case errors.Is(err, master.ErrDivergence):
			rp.setState(ReplicaDiverged, err.Error())
			return
		case errors.Is(err, errWALTruncated), errors.Is(err, master.ErrReplicaGap):
			rp.setState(ReplicaCatchingUp, "")
			if cerr := rp.catchUp(ctx); cerr != nil {
				rp.setState(ReplicaRetrying, cerr.Error())
				backoff = rp.sleep(ctx, backoff)
			} else {
				rp.mu.Lock()
				rp.catchups++
				rp.state = ReplicaTailing
				rp.lastErr = ""
				rp.mu.Unlock()
				backoff = 50 * time.Millisecond
			}
		default:
			rp.mu.Lock()
			rp.reconnects++
			rp.state = ReplicaRetrying
			rp.lastErr = err.Error()
			rp.mu.Unlock()
			backoff = rp.sleep(ctx, backoff)
		}
	}
	rp.setState(ReplicaStopped, "")
}

// tailOnce issues one GET /v1/wal?after=<head> and applies every frame
// the response carries until the stream ends.
func (rp *replica) tailOnce(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/wal?after=%d", rp.leader, rp.f.Epoch()), nil)
	if err != nil {
		return err
	}
	resp, err := rp.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	if le, perr := strconv.ParseUint(resp.Header.Get("X-Leader-Epoch"), 10, 64); perr == nil {
		rp.observeLeader(le)
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		return errWALTruncated
	default:
		return fmt.Errorf("certainfix: leader %s /v1/wal: %s", rp.leader, resp.Status)
	}
	rp.setState(ReplicaTailing, "")
	br := bufio.NewReader(resp.Body)
	for {
		rec, err := wal.ReadFrame(br)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			// Mid-frame break or a corrupt frame: drop the connection and
			// re-request from our head — frames are idempotent to re-apply
			// (ApplyRecord skips epochs at or below it).
			return err
		}
		if _, err := rp.f.ApplyRecord(rec); err != nil {
			return err
		}
		rp.observeLeader(rec.Epoch)
	}
}

// catchUp rebases the follower onto the leader's current checkpoint.
// A checkpoint at or behind our head is not an error — the truncation
// raced us and the next tail resumes from where we are.
func (rp *replica) catchUp(ctx context.Context) error {
	img, epoch, err := rp.fetchCheckpoint(ctx)
	if err != nil {
		return err
	}
	if img.Epoch() <= rp.f.Epoch() {
		return nil
	}
	if err := rp.f.Reset(img); err != nil {
		return err
	}
	rp.observeLeader(epoch)
	return nil
}

// fetchCheckpoint GETs /v1/checkpoint and loads the arena image,
// cross-checking the X-Checkpoint-Epoch header against the image's own
// epoch — a mismatch means the leader is lying about its lineage.
func (rp *replica) fetchCheckpoint(ctx context.Context) (*master.Data, uint64, error) {
	cctx, cancel := context.WithTimeout(ctx, checkpointFetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, rp.leader+"/v1/checkpoint", nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := rp.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, 0, fmt.Errorf("certainfix: leader %s /v1/checkpoint: %s: %s",
			rp.leader, resp.Status, bytes.TrimSpace(msg))
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	img, err := master.LoadArenaBytes(raw, rp.rules)
	if err != nil {
		return nil, 0, err
	}
	if rp.auth {
		// A follower opted into auth keeps a root even when the leader's
		// image carries none; no-op when the (verified) image has one.
		img.Authenticate()
	}
	epoch := img.Epoch()
	if h := resp.Header.Get("X-Checkpoint-Epoch"); h != "" {
		claimed, perr := strconv.ParseUint(h, 10, 64)
		if perr != nil {
			return nil, 0, fmt.Errorf("certainfix: leader %s: bad X-Checkpoint-Epoch %q", rp.leader, h)
		}
		if claimed != epoch {
			return nil, 0, fmt.Errorf("certainfix: leader %s checkpoint image at epoch %d but header claims %d",
				rp.leader, epoch, claimed)
		}
	}
	return img, epoch, nil
}

// sleep backs off (cancellably) and returns the next backoff.
func (rp *replica) sleep(ctx context.Context, d time.Duration) time.Duration {
	select {
	case <-ctx.Done():
	case <-time.After(d):
	}
	if d *= 2; d > replicaMaxBackoff {
		d = replicaMaxBackoff
	}
	return d
}

// observeLeader raises the observed leader epoch (never lowers it).
func (rp *replica) observeLeader(epoch uint64) {
	rp.mu.Lock()
	if epoch > rp.leaderEpoch {
		rp.leaderEpoch = epoch
	}
	rp.mu.Unlock()
}

// setState records state, preserving a terminal diverged state (Close
// after divergence must not relabel the lineage as merely stopped).
func (rp *replica) setState(st ReplicaState, lastErr string) {
	rp.mu.Lock()
	if rp.state != ReplicaDiverged {
		rp.state = st
		rp.lastErr = lastErr
	}
	rp.mu.Unlock()
}

// stats snapshots the observable replication state.
func (rp *replica) stats() ReplicationStats {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	head := rp.f.Current()
	epoch := head.Epoch()
	var lag uint64
	if rp.leaderEpoch > epoch {
		lag = rp.leaderEpoch - epoch
	}
	st := ReplicationStats{
		Leader:      rp.leader,
		State:       rp.state,
		Epoch:       epoch,
		LeaderEpoch: rp.leaderEpoch,
		Lag:         lag,
		Catchups:    rp.catchups,
		Reconnects:  rp.reconnects,
		LastError:   rp.lastErr,
	}
	if root, ok := head.AuthRoot(); ok {
		st.Root = root.String()
	}
	return st
}

// stop cancels the shipping loop and waits for it to exit.
func (rp *replica) stop() {
	rp.runCancel()
	<-rp.done
}
