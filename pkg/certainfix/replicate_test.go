package certainfix_test

// Epoch shipping at the API surface: a follower System bootstrapped over
// HTTP converges to the leader, keeps converging while the leader
// updates live, rebases from the checkpoint after a partition lets a
// truncation pass it by, serves reads (including session tokens minted
// on the leader), and refuses writes with the typed sentinel.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/certainfix"
)

// replicationLeader is the order/catalog fixture on a durable lineage
// with aggressive checkpoints, so truncation (and with it the follower
// catch-up path) actually happens inside a short test.
func replicationLeader(t *testing.T, dir string) (*certainfix.System, *certainfix.Rules) {
	t.Helper()
	r := certainfix.StringSchema("order", "sku", "price", "desc")
	rm := certainfix.StringSchema("catalog", "sku", "price", "desc")
	rules, err := certainfix.ParseRules(r, rm, `
rule price: (sku ; sku) -> (price ; price)
rule desc:  (sku ; sku) -> (desc ; desc)
`)
	if err != nil {
		t.Fatal(err)
	}
	masterRel := certainfix.NewRelation(rm)
	if err := masterRel.Append(skuTuple(1)); err != nil {
		t.Fatal(err)
	}
	sys, err := certainfix.New(rules, masterRel,
		certainfix.WithWAL(dir), certainfix.WithCheckpointEvery(2))
	if err != nil {
		t.Fatal(err)
	}
	return sys, rules
}

func skuTuple(i int) certainfix.Tuple {
	return certainfix.StringTuple(fmt.Sprintf("sku-%d", i), fmt.Sprintf("%d.50", i), fmt.Sprintf("item-%d", i))
}

func addSKU(t *testing.T, sys *certainfix.System, i int) {
	t.Helper()
	if _, err := sys.UpdateMaster([]certainfix.Tuple{skuTuple(i)}, nil); err != nil {
		t.Fatalf("update sku-%d: %v", i, err)
	}
}

// waitFor polls cond until it holds or the deadline trips.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFollowerReplication(t *testing.T) {
	leader, rules := replicationLeader(t, t.TempDir())
	defer leader.Close()
	// Storm before the follower exists: CheckpointEvery=2 truncates the
	// early epochs, so the bootstrap MUST come from the checkpoint image.
	for i := 2; i <= 6; i++ {
		addSKU(t, leader, i)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/wal", leader.ServeWAL)
	mux.HandleFunc("GET /v1/checkpoint", leader.ServeCheckpoint)
	// The partition switch: while set, every request fails at the
	// transport level, exactly like a leader behind a dead link.
	var partitioned atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if partitioned.Load() {
			http.Error(w, "partitioned", http.StatusBadGateway)
			return
		}
		mux.ServeHTTP(w, r)
	}))
	defer ts.Close()

	// A request from before the checkpoint answers the protocol's 409 —
	// the rule that makes an empty stream distinguishable from truncation.
	resp, err := http.Get(ts.URL + "/v1/wal?after=0")
	if err != nil {
		t.Fatal(err)
	}
	var conflict struct {
		Code string `json:"code"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&conflict); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || conflict.Code != "wal_truncated" {
		t.Fatalf("after=0 behind checkpoint: status %d code %q", resp.StatusCode, conflict.Code)
	}
	if resp.Header.Get("X-Checkpoint-Epoch") == "" {
		t.Fatal("409 carries no X-Checkpoint-Epoch")
	}

	follower, err := certainfix.NewFollower(rules, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	waitFor(t, "initial convergence", func() bool {
		return follower.MasterEpoch() == leader.MasterEpoch()
	})
	if follower.MasterLen() != leader.MasterLen() {
		t.Fatalf("converged |Dm| %d, leader %d", follower.MasterLen(), leader.MasterLen())
	}

	// Live tailing: updates land on the follower without reconnect churn.
	for i := 7; i <= 9; i++ {
		addSKU(t, leader, i)
	}
	waitFor(t, "live tail convergence", func() bool {
		return follower.MasterEpoch() == leader.MasterEpoch()
	})

	// Partition the follower, move the leader past a truncation, heal:
	// the follower's next tail gets 409 and must rebase from the
	// checkpoint.
	partitioned.Store(true)
	waitFor(t, "follower to notice the partition", func() bool {
		st, _ := follower.Replication()
		return st.Reconnects >= 1
	})
	for i := 10; i <= 13; i++ {
		addSKU(t, leader, i)
	}
	if err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	partitioned.Store(false)
	waitFor(t, "post-partition convergence", func() bool {
		return follower.MasterEpoch() == leader.MasterEpoch()
	})
	st, ok := follower.Replication()
	if !ok {
		t.Fatal("follower reports no replication stats")
	}
	if st.Catchups < 1 {
		t.Fatalf("follower never rebased from the checkpoint: %+v", st)
	}
	if st.Lag != 0 || st.State != certainfix.ReplicaTailing {
		t.Fatalf("converged follower unhealthy: %+v", st)
	}

	// Reads are the leader's reads: same repair, byte for byte.
	dirty := certainfix.StringTuple("sku-12", "0.00", "junk")
	wantT, _, wantFixed, err := leader.RepairOnce(dirty, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	gotT, _, gotFixed, err := follower.RepairOnce(dirty, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotFixed) != len(wantFixed) || gotT[1].Str() != wantT[1].Str() || gotT[2].Str() != wantT[2].Str() {
		t.Fatalf("follower repaired %v -> %v, leader %v -> %v", gotFixed, gotT, wantFixed, wantT)
	}

	// A session token minted on the leader resumes on the follower —
	// the stateless-server pattern across nodes.
	ctx := context.Background()
	sess, err := leader.Begin(ctx, certainfix.StringTuple("sku-11", "", ""))
	if err != nil {
		t.Fatal(err)
	}
	token, err := sess.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := follower.Resume(ctx, token)
	if err != nil {
		t.Fatalf("resume leader token on follower: %v", err)
	}
	truth := skuTuple(11)
	for rounds := 0; !resumed.Done(); rounds++ {
		if rounds > 4 {
			t.Fatal("resumed session did not finish")
		}
		attrs := resumed.Suggested()
		vals := make([]certainfix.Value, len(attrs))
		for i, p := range attrs {
			vals[i] = truth[p]
		}
		if err := resumed.Provide(attrs, vals); err != nil {
			t.Fatal(err)
		}
	}
	if !resumed.Completed() || resumed.Tuple()[1].Str() != "11.50" {
		t.Fatalf("resumed fix on follower: completed=%v tuple=%v", resumed.Completed(), resumed.Tuple())
	}

	// Writes are refused with the typed sentinel; the leader still writes.
	if _, err := follower.UpdateMaster([]certainfix.Tuple{skuTuple(99)}, nil); !errors.Is(err, certainfix.ErrReadOnlyReplica) {
		t.Fatalf("follower write: want ErrReadOnlyReplica, got %v", err)
	}
	addSKU(t, leader, 14)
	waitFor(t, "convergence after refused write", func() bool {
		return follower.MasterEpoch() == leader.MasterEpoch()
	})
}

// TestServeWALRequiresDurability pins the 404 contract: a memory-only
// System has nothing to ship and says so with a machine code.
func TestServeWALRequiresDurability(t *testing.T) {
	r := certainfix.StringSchema("order", "sku", "price")
	rm := certainfix.StringSchema("catalog", "sku", "price")
	rules, err := certainfix.ParseRules(r, rm, `rule s: (sku ; sku) -> (price ; price)`)
	if err != nil {
		t.Fatal(err)
	}
	masterRel := certainfix.NewRelation(rm)
	if err := masterRel.Append(certainfix.StringTuple("sku-1", "9.99")); err != nil {
		t.Fatal(err)
	}
	sys, err := certainfix.New(rules, masterRel)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []http.HandlerFunc{sys.ServeWAL, sys.ServeCheckpoint} {
		rec := httptest.NewRecorder()
		h(rec, httptest.NewRequest(http.MethodGet, "/", nil))
		var body struct {
			Code string `json:"code"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		if rec.Code != http.StatusNotFound || body.Code != "not_durable" {
			t.Fatalf("memory-only system: status %d code %q", rec.Code, body.Code)
		}
	}
}
