package certainfix

// VerifyFix: the client side of authenticated fixes. A Result produced
// under WithAuth carries, per auto-fixed attribute, the rule that fired,
// the master tuple that supplied the value, and a Merkle inclusion proof
// for that tuple. Given the rule set and a published root — /v1/root, a
// pinned config, an audit log — anyone can re-check the whole derivation
// offline: no master data, no server trust, no network. A server cannot
// invent a master tuple (the proof would not fold to the root), point at
// the wrong tuple (the premise correspondence would fail), or claim a
// value the tuple does not carry.

import (
	"errors"
	"fmt"

	"repro/internal/authtree"
	"repro/internal/relation"
	"repro/internal/rule"
)

// ErrVerifyFailed is the sentinel every VerifyFix rejection matches via
// errors.Is: missing or excess provenance, a witness that does not
// justify its fix under the rules, or an inclusion proof that does not
// fold to the root. Callers needing the specific reason read the error
// text; programmatically a fix either verifies or it does not.
var ErrVerifyFailed = errors.New("certainfix: fix does not verify against root")

// VerifyFix checks a fix Result against a published master root using
// nothing else: every attribute in res.AutoFixed must carry a Witness
// whose rule exists in rules, whose premise matches the fixed tuple
// against the witnessed master tuple, whose master cell supplies exactly
// the fixed value, and whose inclusion proof authenticates the master
// tuple under root. User-validated attributes are the users' assertion,
// not the system's, and are not checked.
//
// The check is sound against the FINAL tuple even though rules fired
// mid-cascade: a rule fires only when its premise attributes are
// validated, and validated cells are frozen for the rest of the session
// — so the premise cells the rule saw are the cells res.Tuple carries.
func VerifyFix(rules *Rules, res *Result, root string) error {
	if res == nil {
		return fmt.Errorf("%w: nil result", ErrVerifyFailed)
	}
	rootHash, err := authtree.ParseHash(root)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrVerifyFailed, err)
	}
	t := res.Tuple
	if len(t) != rules.Schema().Arity() {
		return fmt.Errorf("%w: tuple arity %d does not match schema %s", ErrVerifyFailed, len(t), rules.Schema())
	}

	// The witness set must cover AutoFixed exactly: a missing witness is
	// an unjustified fix, an extra one claims provenance for an attribute
	// the rules did not fix.
	byAttr := make(map[int]*Witness, len(res.Provenance))
	for i := range res.Provenance {
		w := &res.Provenance[i]
		if !res.AutoFixed.Has(w.Attr) {
			return fmt.Errorf("%w: witness for attribute %d, which is not auto-fixed", ErrVerifyFailed, w.Attr)
		}
		if _, dup := byAttr[w.Attr]; dup {
			return fmt.Errorf("%w: duplicate witness for attribute %d", ErrVerifyFailed, w.Attr)
		}
		byAttr[w.Attr] = w
	}

	marity := rules.MasterSchema().Arity()
	var verr error
	res.AutoFixed.Range(func(p int) bool {
		w, ok := byAttr[p]
		if !ok {
			verr = fmt.Errorf("%w: auto-fixed attribute %d has no witness", ErrVerifyFailed, p)
			return false
		}
		verr = verifyWitness(rules, t, w, marity, rootHash)
		return verr == nil
	})
	return verr
}

// verifyWitness checks one witness: rule exists and targets the
// attribute, the master tuple matches the rule against the fixed tuple,
// supplies the fixed value, and is committed by the root.
func verifyWitness(rules *Rules, t relation.Tuple, w *Witness, marity int, root authtree.Hash) error {
	ru := ruleByName(rules, w.Rule)
	if ru == nil {
		return fmt.Errorf("%w: attribute %d cites unknown rule %q", ErrVerifyFailed, w.Attr, w.Rule)
	}
	if ru.RHS() != w.Attr {
		return fmt.Errorf("%w: rule %q fixes attribute %d, witness claims %d", ErrVerifyFailed, w.Rule, ru.RHS(), w.Attr)
	}
	if len(w.Master) != marity {
		return fmt.Errorf("%w: attribute %d: master tuple arity %d does not match schema", ErrVerifyFailed, w.Attr, len(w.Master))
	}
	if !ru.MatchesPattern(t) {
		return fmt.Errorf("%w: attribute %d: tuple does not satisfy rule %q's pattern", ErrVerifyFailed, w.Attr, w.Rule)
	}
	x, xm := ru.LHSRef(), ru.LHSMRef()
	for i := range x {
		if !t[x[i]].Equal(w.Master[xm[i]]) {
			return fmt.Errorf("%w: attribute %d: premise attribute %d does not match master tuple", ErrVerifyFailed, w.Attr, x[i])
		}
	}
	if !t[ru.RHS()].Equal(w.Master[ru.RHSM()]) {
		return fmt.Errorf("%w: attribute %d: fixed value is not the master tuple's", ErrVerifyFailed, w.Attr)
	}
	if err := authtree.VerifyInclusion(root, w.Master, w.Proof); err != nil {
		return fmt.Errorf("%w: attribute %d: %v", ErrVerifyFailed, w.Attr, err)
	}
	return nil
}

// ruleByName finds the named rule in Σ, nil when absent.
func ruleByName(rules *Rules, name string) *rule.Rule {
	for _, ru := range rules.Rules() {
		if ru.Name() == name {
			return ru
		}
	}
	return nil
}
