package certainfix_test

import (
	"strings"
	"testing"

	"repro/internal/paperex"
	"repro/pkg/certainfix"
)

func paperSystem(t *testing.T, opts certainfix.Options) *certainfix.System {
	t.Helper()
	sigma := paperex.Sigma0()
	sys, err := certainfix.New(sigma, paperex.MasterRelation(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSystemFixEndToEnd(t *testing.T) {
	sys := paperSystem(t, certainfix.Options{})
	truth := certainfix.StringTuple(
		"Robert", "Brady", "131", "079172485", "2",
		"51 Elm Row", "Edi", "EH7 4AH", "CD")
	res, err := sys.Fix(paperex.InputT1(), certainfix.SimulatedUser{Truth: truth})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || !res.Tuple.Equal(truth) {
		t.Fatalf("completed=%v tuple=%v", res.Completed, res.Tuple)
	}
}

func TestSystemRepairOnce(t *testing.T) {
	sys := paperSystem(t, certainfix.Options{})
	r := sys.Schema()
	t1 := paperex.InputT1()
	fixed, covered, changed, err := sys.RepairOnce(t1, []int{r.MustPos("zip")})
	if err != nil {
		t.Fatal(err)
	}
	if fixed[r.MustPos("AC")].Str() != "131" {
		t.Fatalf("AC = %v", fixed[r.MustPos("AC")])
	}
	// Input untouched.
	if t1[r.MustPos("AC")].Str() != "020" {
		t.Fatal("RepairOnce must not mutate its input")
	}
	if len(changed) != 3 || covered.Len() != 4 {
		t.Fatalf("changed=%v covered=%v", changed, covered.Positions())
	}
	if _, _, _, err := sys.RepairOnce(t1, []int{0, 0}); err == nil {
		t.Fatal("duplicate validated attributes must error")
	}
}

func TestSystemRegionChecks(t *testing.T) {
	sys := paperSystem(t, certainfix.Options{})
	reg, err := certainfix.NewRegion(sys.Schema(),
		[]string{"zip", "phn", "type", "item"},
		[]map[string]certainfix.Value{
			{"zip": certainfix.String("EH7 4AH"), "phn": certainfix.String("079172485"), "type": certainfix.String("2")},
		})
	if err != nil {
		t.Fatal(err)
	}
	v, err := sys.CertainRegion(reg)
	if err != nil || !v.OK {
		t.Fatalf("Example 9 region must be certain: %v %v", v, err)
	}
	v, err = sys.Consistent(reg)
	if err != nil || !v.OK {
		t.Fatalf("region must be consistent: %v %v", v, err)
	}
	if _, err := certainfix.NewRegion(sys.Schema(), []string{"zip"},
		[]map[string]certainfix.Value{{"nope": certainfix.Null}}); err == nil {
		t.Fatal("unknown attribute in region row must error")
	}
}

func TestSystemSuggest(t *testing.T) {
	sys := paperSystem(t, certainfix.Options{})
	r := sys.Schema()
	t1 := paperex.InputT1()
	t1[r.MustPos("AC")] = certainfix.String("131")
	t1[r.MustPos("str")] = certainfix.String("51 Elm Row")
	s := sys.Suggest(t1, r.MustPosList("zip", "AC", "str", "city"))
	if len(s) != 3 {
		t.Fatalf("suggestion = %v, want {phn, type, item}", s)
	}
}

func TestSystemRegions(t *testing.T) {
	sys := paperSystem(t, certainfix.Options{})
	regions := sys.Regions()
	if len(regions) == 0 {
		t.Fatal("no derived regions")
	}
	if len(regions[0].Z) == 0 {
		t.Fatal("best region has empty Z")
	}
}

func TestParseRulesAndCSV(t *testing.T) {
	r := certainfix.StringSchema("R", "K", "V")
	rm := certainfix.StringSchema("Rm", "K", "V")
	rules, err := certainfix.ParseRules(r, rm, `rule kv: (K ; K) -> (V ; V) when K != nil`)
	if err != nil || rules.Len() != 1 {
		t.Fatalf("rules=%v err=%v", rules, err)
	}
	rel, err := certainfix.ReadCSV(rm, strings.NewReader("K,V\nk1,v1\nk2,v2\n"))
	if err != nil || rel.Len() != 2 {
		t.Fatalf("rel=%v err=%v", rel, err)
	}
	sys, err := certainfix.New(rules, rel, certainfix.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fixed, _, changed, err := sys.RepairOnce(certainfix.StringTuple("k1", "wrong"), []int{0})
	if err != nil || len(changed) != 1 || fixed[1].Str() != "v1" {
		t.Fatalf("fixed=%v changed=%v err=%v", fixed, changed, err)
	}
	rules2, err := certainfix.ReadRules(r, rm, strings.NewReader("rule a: (K ; K) -> (V ; V)\n"))
	if err != nil || rules2.Len() != 1 {
		t.Fatalf("ReadRules: %v %v", rules2, err)
	}
}

func TestSystemWithCache(t *testing.T) {
	sys := paperSystem(t, certainfix.Options{UseSuggestionCache: true})
	t4 := paperex.InputT4()
	for i := 0; i < 3; i++ {
		res, err := sys.Fix(t4, certainfix.SimulatedUser{Truth: t4})
		if err != nil || !res.Completed {
			t.Fatalf("iteration %d: res=%v err=%v", i, res, err)
		}
	}
}

func TestParseRulesWithSchemas(t *testing.T) {
	r, rm, rules, err := certainfix.ParseRulesWithSchemas(`
schema R: K, V
master Rm: K, V
rule kv: (K ; K) -> (V ; V) when K != nil
`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Arity() != 2 || rm.Arity() != 2 || rules.Len() != 1 {
		t.Fatalf("r=%v rm=%v rules=%d", r, rm, rules.Len())
	}
	if _, _, _, err := certainfix.ParseRulesWithSchemas("rule kv: (K ; K) -> (V ; V)"); err == nil {
		t.Fatal("missing headers must error")
	}
	if _, _, _, err := certainfix.ParseRulesWithSchemas("schema R: \nmaster Rm: K"); err == nil {
		t.Fatal("empty attribute must error")
	}
}
