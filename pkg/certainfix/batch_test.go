package certainfix_test

import (
	"testing"

	"repro/internal/paperex"
	"repro/pkg/certainfix"
)

// TestRepairBatchMatchesRepairOnce: the concurrent batch repair must agree
// with per-tuple RepairOnce on every field, including the per-tuple error
// reporting that keeps one bad tuple from aborting the batch.
func TestRepairBatchMatchesRepairOnce(t *testing.T) {
	sys := paperSystem(t, certainfix.Options{})
	r := sys.Schema()
	validated := []int{r.MustPos("zip"), r.MustPos("phn"), r.MustPos("type")}
	inputs := []certainfix.Tuple{
		paperex.InputT1(), paperex.InputT2(), paperex.InputT3(), paperex.InputT4(),
		paperex.InputT1(),
	}

	for _, workers := range []int{0, 1, 3, 8} {
		got := sys.RepairBatch(inputs, validated, workers)
		if len(got) != len(inputs) {
			t.Fatalf("workers=%d: %d results for %d inputs", workers, len(got), len(inputs))
		}
		for i, in := range inputs {
			wantT, wantZ, wantFixed, wantErr := sys.RepairOnce(in, validated)
			rep := got[i]
			if (rep.Err == nil) != (wantErr == nil) {
				t.Fatalf("workers=%d tuple %d: err %v vs %v", workers, i, rep.Err, wantErr)
			}
			if wantErr != nil {
				continue
			}
			if !rep.Tuple.Equal(wantT) || !rep.Validated.Equal(wantZ) || len(rep.Fixed) != len(wantFixed) {
				t.Fatalf("workers=%d tuple %d diverged: %+v", workers, i, rep)
			}
		}
	}
}

// TestSystemFixBatch: the public batch entry point matches sequential Fix.
func TestSystemFixBatch(t *testing.T) {
	sys := paperSystem(t, certainfix.Options{})
	truth := certainfix.StringTuple(
		"Robert", "Brady", "131", "079172485", "2",
		"51 Elm Row", "Edi", "EH7 4AH", "CD")
	inputs := []certainfix.Tuple{paperex.InputT1(), paperex.InputT1()}
	res, err := sys.FixBatch(inputs, func(i int) certainfix.User {
		return certainfix.SimulatedUser{Truth: truth}
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.Fix(paperex.InputT1(), certainfix.SimulatedUser{Truth: truth})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.Completed || !r.Tuple.Equal(want.Tuple) || r.Rounds != want.Rounds {
			t.Fatalf("batch result %d diverged: %+v", i, r)
		}
	}
}
