// Package certainfix is the public API of the certain-fix data-cleaning
// library — a Go implementation of "Towards Certain Fixes with Editing
// Rules and Master Data" (Fan, Li, Ma, Tang, Yu; VLDB 2010 / VLDBJ 2012).
//
// The library repairs input tuples at the point of data entry using a
// master relation and a set of editing rules, with a correctness
// guarantee the constraint-based repair methods lack: an attribute is
// modified only when the fix is *certain* — implied by user-validated
// attributes, the rules and the master data.
//
// # Quick start
//
// Fixing is interactive: the system suggests attributes to validate, the
// users answer, certain fixes cascade, repeat. The primary API models
// each fix as a first-class, resumable session:
//
//	r := certainfix.StringSchema("order", "sku", "price", "desc")
//	rm := certainfix.StringSchema("catalog", "sku", "price", "desc")
//	rules, _ := certainfix.ParseRules(r, rm, `
//	rule price: (sku ; sku) -> (price ; price) when sku != nil
//	rule desc:  (sku ; sku) -> (desc ; desc)  when sku != nil
//	`)
//	sys, _ := certainfix.New(rules, masterRelation)
//
//	sess, _ := sys.Begin(ctx, dirtyTuple)
//	for !sess.Done() {
//	    attrs := sess.Suggested()          // ask the users about these
//	    values := askSomehow(attrs)        // minutes later, over a network...
//	    if err := sess.Provide(attrs, values); err != nil { ... }
//	}
//	res := sess.Result()
//
// Sessions serialize: MarshalBinary produces a JSON token from which
// System.Resume rebuilds the session — in a different process if need
// be, re-pinning the master snapshot the session started on (see
// UpdateMaster and WithMasterHistory). That is the stateless-server
// pattern: a network frontend holds nothing between rounds because the
// token round-trips through the client; cmd/certainfixd is a complete
// HTTP service built this way.
//
// When the answers are available synchronously, the callback form is a
// thin wrapper over a session:
//
//	res, _ := sys.Fix(dirtyTuple, user) // user answers suggestions
//
// Errors are typed: ErrSessionDone, ErrArityMismatch, ErrInconsistent
// (with *ConflictError details), ErrEpochEvicted and ErrBadToken all
// match through errors.Is/As.
//
// See examples/ for complete programs (examples/resumable demonstrates
// suspend/resume) and DESIGN.md for the architecture.
package certainfix

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/analysis"
	"repro/internal/authtree"
	"repro/internal/fix"
	"repro/internal/master"
	"repro/internal/monitor"
	"repro/internal/parallel"
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
	"repro/internal/suggest"
)

// Core relational types, re-exported for API ergonomics.
type (
	// Schema describes a relation's attributes.
	Schema = relation.Schema
	// Tuple is a row; index it by schema position.
	Tuple = relation.Tuple
	// Value is a typed scalar cell.
	Value = relation.Value
	// Relation is an in-memory table.
	Relation = relation.Relation
	// AttrSet is a set of attribute positions.
	AttrSet = relation.AttrSet
	// Rules is a set Σ of editing rules over (R, Rm).
	Rules = rule.Set
	// Rule is one editing rule ϕ = ((X, Xm) → (B, Bm), tp[Xp]). Mined
	// rules may carry a confidence weight (Rule.Confidence, the DSL's
	// trailing `weight` clause) that Suggest uses to rank otherwise-tied
	// suggestions.
	Rule = rule.Rule
	// Region is a pair (Z, Tc): user-validated attributes plus a pattern
	// tableau describing which tuples the guarantee covers.
	Region = fix.Region
	// User supplies interactive feedback; see SimulatedUser for testing.
	User = monitor.User
	// SimulatedUser answers suggestions from a ground-truth tuple.
	SimulatedUser = monitor.SimulatedUser
	// Result reports a finished fix.
	Result = monitor.Result
	// Witness is one auto-fixed attribute's provenance: the rule that
	// fired, the master tuple that supplied the value, and (under
	// WithAuth) its inclusion proof.
	Witness = monitor.Witness
	// Proof is a Merkle inclusion proof tying one master tuple to a root.
	Proof = authtree.Proof
	// Verdict is the outcome of a consistency or coverage check.
	Verdict = analysis.Verdict
	// RegionCandidate is a derived certain region with its quality score.
	RegionCandidate = suggest.Candidate
)

// Value constructors.
var (
	// Null is the missing value.
	Null = relation.Null
	// String builds a string value.
	String = relation.String
	// Int builds an integer value.
	Int = relation.Int
	// StringTuple builds a tuple of strings; empty cells become Null.
	StringTuple = relation.StringTuple
)

// StringSchema builds a schema whose attributes are all string-typed.
func StringSchema(name string, attrs ...string) *Schema {
	return relation.StringSchema(name, attrs...)
}

// NewRelation creates an empty relation over the schema.
func NewRelation(schema *Schema) *Relation {
	return relation.NewRelation(schema)
}

// ParseRules parses the textual rule DSL (one rule per line; see
// internal/rule's documentation for the grammar):
//
//	rule phi3: (AC, phn ; AC, Hphn) -> (zip ; zip) when type = "1", AC != "0800"
func ParseRules(r, rm *Schema, src string) (*Rules, error) {
	return rule.ParseRuleSet(r, rm, src)
}

// ReadRules parses the rule DSL from a reader (e.g. a .rules file).
func ReadRules(r, rm *Schema, rd io.Reader) (*Rules, error) {
	return rule.ParseRules(r, rm, rd)
}

// ParseRulesWithSchemas parses the self-contained rules-file format the
// CLIs use: the rule DSL preceded by two schema headers declaring the
// input and master schemas.
//
//	schema R: zip, ST, phn, ...
//	master Rm: zip, ST, phn, ...
//	rule h01: (zip ; zip) -> (ST ; ST) when zip != nil
//
// It returns both schemas alongside the parsed rule set.
func ParseRulesWithSchemas(src string) (r, rm *Schema, rules *Rules, err error) {
	var ruleLines []string
	for ln, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "schema "):
			r, err = parseSchemaHeader(trimmed, "schema ")
		case strings.HasPrefix(trimmed, "master "):
			rm, err = parseSchemaHeader(trimmed, "master ")
		default:
			ruleLines = append(ruleLines, line)
		}
		if err != nil {
			return nil, nil, nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
	}
	if r == nil || rm == nil {
		return nil, nil, nil, fmt.Errorf("certainfix: missing 'schema R: ...' or 'master Rm: ...' header")
	}
	rules, err = ParseRules(r, rm, strings.Join(ruleLines, "\n"))
	if err != nil {
		return nil, nil, nil, err
	}
	return r, rm, rules, nil
}

// parseSchemaHeader parses one 'schema name: a, b, c' header line.
func parseSchemaHeader(line, prefix string) (*Schema, error) {
	rest := strings.TrimPrefix(line, prefix)
	name, attrs, ok := strings.Cut(rest, ":")
	if !ok {
		return nil, fmt.Errorf("certainfix: schema header needs 'name: attr, attr, ...'")
	}
	var names []string
	for _, a := range strings.Split(attrs, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return nil, fmt.Errorf("certainfix: empty attribute in schema header")
		}
		names = append(names, a)
	}
	return StringSchema(strings.TrimSpace(name), names...), nil
}

// ReadCSV loads a relation from CSV with a header row matching the schema.
func ReadCSV(schema *Schema, rd io.Reader) (*Relation, error) {
	return relation.ReadCSV(schema, rd)
}

// System binds a rule set Σ and versioned master data Dm, precomputing
// indexes, the rule dependency graph and the certain regions. Safe for
// concurrent use; UpdateMaster publishes master-data corrections without
// blocking in-flight fixes (each session keeps the snapshot it started
// with, later fixes pick up the new epoch).
type System struct {
	sigma *rule.Set
	ver   *master.Versioned
	mon   *monitor.Monitor
	dur   *master.DurableVersioned // non-nil under WithWAL
	rep   *replica                 // non-nil for a NewFollower replica
}

// New builds a System. The master relation must be an instance of Σ's
// master schema; it is assumed consistent and complete (the master-data
// contract of the paper, §2) but no longer static — see UpdateMaster.
// Configuration is by functional options (the deprecated Options struct
// still works in that position):
//
//	sys, err := certainfix.New(rules, masterRel,
//	    certainfix.WithSuggestionCache(), certainfix.WithMaxRounds(4))
//
// Under WithWAL, masterRel seeds the lineage only on the first open of
// the WAL directory; afterwards the directory itself is authoritative
// and masterRel may even be nil — recovery restores the exact master
// the previous process last published.
func New(rules *Rules, masterRel *Relation, opts ...Option) (*System, error) {
	var cfg Options
	for _, o := range opts {
		o.apply(&cfg)
	}
	if cfg.WALDir != "" {
		return newDurableSystem(rules, func() (*master.Data, error) {
			if masterRel == nil {
				return nil, fmt.Errorf("certainfix: WAL directory holds no checkpoint and no master relation was given")
			}
			return master.NewForRules(masterRel, rules, master.WithShards(cfg.Shards))
		}, cfg)
	}
	buildOpts := []master.BuildOption{master.WithShards(cfg.Shards)}
	if cfg.Auth {
		buildOpts = append(buildOpts, master.WithAuth())
	}
	dm, err := master.NewForRules(masterRel, rules, buildOpts...)
	if err != nil {
		return nil, err
	}
	ver := master.NewVersioned(dm)
	if cfg.MasterHistory > 0 {
		ver.SetHistory(cfg.MasterHistory)
	}
	mon, err := monitor.NewVersioned(rules, ver, monitor.Config{
		UseBDD:        cfg.UseSuggestionCache,
		InitialRegion: cfg.InitialRegion,
		MaxRounds:     cfg.MaxRounds,
	})
	if err != nil {
		return nil, err
	}
	return &System{
		sigma: rules,
		ver:   ver,
		mon:   mon,
	}, nil
}

// UpdateMaster applies a master-data delta — corrections and additions to
// Dm — and publishes the result as a new immutable snapshot, returning
// its epoch. Deletes name tuple ids in the current snapshot and are
// applied with swap-remove semantics (the last tuple moves into the
// deleted slot) before adds are appended. Indexes, posting lists and
// pattern-support bitmaps are maintained incrementally; concurrent Fix,
// Suggest and Repair calls never block and never observe a half-applied
// delta. In-flight sessions finish on the snapshot they pinned at start;
// fixes beginning after UpdateMaster returns see the new epoch.
// Under WithWAL the delta is written to the log before the snapshot is
// published — with FsyncAlways, an UpdateMaster that returned survives a
// crash. On a follower System (NewFollower) the call fails with
// ErrReadOnlyReplica: a replica's lineage is the leader's.
func (s *System) UpdateMaster(adds []Tuple, deletes []int) (uint64, error) {
	if s.rep != nil {
		return 0, fmt.Errorf("certainfix: update on follower of %s: %w", s.rep.leader, ErrReadOnlyReplica)
	}
	var (
		snap *master.Data
		err  error
	)
	if s.dur != nil {
		snap, err = s.dur.Apply(adds, deletes)
	} else {
		snap, err = s.ver.Apply(adds, deletes)
	}
	if err != nil {
		return 0, err
	}
	return snap.Epoch(), nil
}

// MasterEpoch returns the currently published master epoch (0 until the
// first UpdateMaster).
func (s *System) MasterEpoch() uint64 { return s.ver.Epoch() }

// MasterRoot returns the hex Merkle root of the currently published
// master snapshot, with ok=false when the System was built without
// WithAuth. The pair (MasterEpoch, MasterRoot) identifies the master
// contents exactly: any client holding the root can check fix provenance
// with VerifyFix, no server trust required.
func (s *System) MasterRoot() (root string, ok bool) {
	h, ok := s.ver.Current().AuthRoot()
	if !ok {
		return "", false
	}
	return h.String(), true
}

// MasterLen returns |Dm| of the currently published snapshot.
func (s *System) MasterLen() int { return s.ver.Current().Len() }

// Rules returns Σ.
func (s *System) Rules() *Rules { return s.sigma }

// Schema returns the input schema R.
func (s *System) Schema() *Schema { return s.sigma.Schema() }

// Regions returns the precomputed certain-region candidates, best first.
// The first candidate's Z is what the users are asked to validate first.
func (s *System) Regions() []RegionCandidate { return s.mon.Regions() }

// Fix interactively finds a certain fix for one input tuple (algorithm
// CertainFix, Fig. 3 of the paper), driving the user callback over a
// session — a thin wrapper over Begin/Provide/Result for callers whose
// answers are available synchronously. The input is not mutated.
func (s *System) Fix(t Tuple, user User) (Result, error) {
	return s.FixContext(context.Background(), t, user)
}

// FixContext is Fix with cancellation: the context is observed at every
// round boundary, so a deadline or cancellation interrupts the fix
// between rounds and returns the context's error. To suspend work
// instead of abandoning it, use Begin and serialize the session.
func (s *System) FixContext(ctx context.Context, t Tuple, user User) (Result, error) {
	return s.mon.FixCtx(ctx, t, user)
}

// FixBatch fixes many input tuples concurrently on a bounded worker pool,
// driving userFor(i) for tuple i. Results are aligned with inputs and,
// without the suggestion cache, byte-identical to a sequential Fix loop.
// workers ≤ 0 selects GOMAXPROCS.
func (s *System) FixBatch(inputs []Tuple, userFor func(i int) User, workers int) ([]Result, error) {
	return s.FixBatchContext(context.Background(), inputs, userFor, workers)
}

// FixBatchContext is FixBatch with cancellation: once ctx is done no
// further tuples are dispatched, in-flight fixes stop at their next
// round boundary, and the call reports the context's error after the
// pool drains (a fix error still wins).
func (s *System) FixBatchContext(ctx context.Context, inputs []Tuple, userFor func(i int) User, workers int) ([]Result, error) {
	return s.mon.FixBatchCtx(ctx, inputs, userFor, monitor.BatchOptions{Workers: workers})
}

// StreamRequest is one unit of work for FixStream; ID is a caller-chosen
// correlation id echoed on the response.
type StreamRequest = monitor.StreamRequest

// StreamResult is the outcome of one StreamRequest.
type StreamResult = monitor.StreamResult

// FixStream consumes requests until in is closed or ctx is done, fixing
// them concurrently, and emits one StreamResult per request in
// completion order (correlate by ID). The returned channel is closed
// after the last result — the entry-point-shaped API of the paper's
// monitoring framework for services that fix tuples as they arrive.
// workers ≤ 0 selects GOMAXPROCS.
func (s *System) FixStream(ctx context.Context, in <-chan StreamRequest, workers int) <-chan StreamResult {
	return s.mon.FixStreamCtx(ctx, in, monitor.BatchOptions{Workers: workers})
}

// Repair is one RepairBatch outcome; fields mirror RepairOnce's returns.
type Repair struct {
	Tuple     Tuple
	Validated AttrSet
	Fixed     []int
	Err       error
}

// RepairBatch runs RepairOnce over every input tuple concurrently against
// the shared immutable (Σ, Dm). The result slice is aligned with inputs;
// per-tuple errors are reported in place so one inconsistent tuple does not
// abort the batch (matching the per-tuple error handling of cmd/certainfix).
// workers ≤ 0 selects GOMAXPROCS.
func (s *System) RepairBatch(inputs []Tuple, validated []int, workers int) []Repair {
	out, err := s.RepairBatchContext(context.Background(), inputs, validated, workers)
	if err != nil {
		// Unreachable by construction: the job function reports per-tuple
		// failures inside Repair.Err and never returns an error, worker
		// panics re-raise as panics, and a background context cannot be
		// cancelled — those are the only error sources in the
		// internal/parallel contract. Panic rather than drop the error so
		// a future contract change cannot be silently swallowed (the bug
		// this replaces: `out, _ :=` discarded the error unconditionally).
		panic("certainfix: RepairBatch: unreachable error from parallel map: " + err.Error())
	}
	return out
}

// RepairBatchContext is RepairBatch with cancellation: once ctx is done
// no further tuples are dispatched and the call returns the context's
// error after the pool drains. Per-tuple repair failures are still
// reported in place (Repair.Err), never as the call error.
func (s *System) RepairBatchContext(ctx context.Context, inputs []Tuple, validated []int, workers int) ([]Repair, error) {
	return parallel.MapCtx(ctx, len(inputs), workers, func(i int) (Repair, error) {
		t, z, fixed, err := s.RepairOnce(inputs[i], validated)
		return Repair{Tuple: t, Validated: z, Fixed: fixed, Err: err}, nil
	})
}

// RepairOnce applies every certain fix that follows from the attributes
// in validated (assumed correct) without user interaction — procedure
// TransFix. It returns the repaired tuple, the set of all validated
// attributes afterwards, and the positions the rules fixed.
func (s *System) RepairOnce(t Tuple, validated []int) (Tuple, AttrSet, []int, error) {
	out := t.Clone()
	zSet := relation.NewAttrSet(validated...)
	if zSet.Len() != len(validated) {
		return nil, AttrSet{}, nil, fmt.Errorf("certainfix: duplicate validated attributes")
	}
	fixed, err := fix.TransFix(s.mon.DepGraph(), s.ver.Current(), out, &zSet)
	if err != nil {
		return nil, AttrSet{}, nil, err
	}
	return out, zSet, fixed, nil
}

// Consistent decides whether (Σ, Dm) is consistent relative to the
// region: every tuple it marks has a unique fix (§4, Thm 1/4). The check
// runs against the currently published master snapshot.
func (s *System) Consistent(reg *Region) (Verdict, error) {
	return s.mon.Deriver().Checker().Consistent(reg)
}

// CertainRegion decides whether the region guarantees certain fixes for
// every tuple it marks (§4, Thm 2/4), against the currently published
// master snapshot.
func (s *System) CertainRegion(reg *Region) (Verdict, error) {
	return s.mon.Deriver().Checker().CertainRegion(reg)
}

// Suggest computes the attribute set the users should validate next for
// tuple t given already-validated attributes (procedure Suggest, Fig. 6).
func (s *System) Suggest(t Tuple, validated []int) []int {
	return s.mon.Deriver().Suggest(t, relation.NewAttrSet(validated...)).S
}

// NewRegion builds a region from attribute names and a tableau of rows,
// where each row maps attribute names to required constants (a
// convenience for concrete tableaus; use the fix and pattern packages
// directly for wildcards and negations).
func NewRegion(schema *Schema, attrs []string, rows []map[string]Value) (*Region, error) {
	z, err := schema.PosList(attrs...)
	if err != nil {
		return nil, err
	}
	tab := pattern.NewTableau()
	for _, row := range rows {
		var pos []int
		var cells []pattern.Cell
		for name, v := range row {
			p, ok := schema.Pos(name)
			if !ok {
				return nil, fmt.Errorf("certainfix: region row names unknown attribute %q", name)
			}
			pos = append(pos, p)
			cells = append(cells, pattern.Eq(v))
		}
		pt, err := pattern.NewTuple(pos, cells)
		if err != nil {
			return nil, err
		}
		tab.Add(pt)
	}
	return fix.NewRegion(z, tab)
}
