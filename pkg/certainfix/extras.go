package certainfix

import (
	"repro/internal/discover"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/relation"
)

// Session is the internal step-wise session type.
//
// Deprecated: use FixSession via System.Begin, which adds context
// awareness and serialization (suspend/resume across processes).
type Session = monitor.Session

// NewSession starts a step-wise fixing session for one tuple.
//
// Deprecated: use System.Begin.
func (s *System) NewSession(t Tuple) (*Session, error) {
	return s.mon.NewSession(t)
}

// RepairRelation applies RepairOnce to every tuple of a relation,
// trusting the given attribute positions on each, and returns a new
// relation with the repaired tuples plus the total number of cells the
// rules fixed. Tuples whose validated values expose rule conflicts are
// copied unchanged (certainty first); their indexes are returned.
func (s *System) RepairRelation(rel *Relation, validated []int) (*Relation, int, []int, error) {
	out := relation.NewRelation(rel.Schema())
	totalFixed := 0
	var conflicted []int
	for i := 0; i < rel.Len(); i++ {
		fixed, _, changed, err := s.RepairOnce(rel.Tuple(i), validated)
		if err != nil {
			conflicted = append(conflicted, i)
			fixed = rel.Tuple(i).Clone()
		}
		totalFixed += len(changed)
		if err := out.Append(fixed); err != nil {
			return nil, 0, nil, err
		}
	}
	return out, totalFixed, conflicted, nil
}

// DiscoverOptions tunes rule mining; see DiscoverRules. Zero values
// select exact single-pass mining; set MinConfidence below 1 to mine
// weighted rules from dirty masters and Workers to parallelize the
// candidate lattice (output is identical for every worker count).
type DiscoverOptions = discover.Options

// MinedDependency is one mined functional dependency with its evidence:
// support, violation count, and the confidence weight 1 − violations/|Dm|
// the corresponding rule carries.
type MinedDependency = discover.Candidate

// DiscoverRules mines editing rules from a master relation whose schema
// aligns positionally with the input schema r — the §7 future-work
// direction of the paper ("discovering editing rules from sample inputs
// and master data"). Mining runs on the same sharded inverted-postings
// engine the probe paths use. The mined rules feed directly into New.
func DiscoverRules(r *Schema, masterRel *Relation, opts DiscoverOptions) (*Rules, []MinedDependency, error) {
	return discover.Rules(r, masterRel, opts)
}

// DiscoverLoopOptions tunes the self-bootstrapping discovery loop; see
// Discover. The embedded DiscoverOptions tune each round's mining
// (MinConfidence defaults to 0.9 here — the loop exists to mine from
// dirty data); MaxRounds bounds the mine→repair rounds and
// RepairMajority sets how lopsided an lhs group must be before its
// minority cells are rewritten.
type DiscoverLoopOptions = discover.LoopOptions

// DiscoverRound records one mine→repair round of Discover: how many
// dependencies were mined, how many master cells moved to their group
// majority, and the round's mean confidence.
type DiscoverRound = discover.RoundStats

// DiscoverResult is Discover's outcome: the mined weighted rule set and
// the dependencies behind it (both reflecting the cleaned master), the
// repaired copy of the master relation, and per-round statistics.
type DiscoverResult = discover.LoopResult

// Discover runs the discover→fix→re-discover bootstrap loop over a
// master relation with no hand-written Σ: mine weighted dependencies
// from the (possibly dirty) master, majority-repair the cells that
// violate them, and re-mine on the cleaned data until a fixpoint or
// MaxRounds. The returned rules carry per-rule confidence weights that
// Suggest uses to rank otherwise-tied suggestions; feed them and the
// cleaned relation straight into New for a fully self-bootstrapped
// system (`rulemine -loop` is the CLI face of this). The input relation
// is never modified. Deterministic for every worker and shard count.
func Discover(r *Schema, masterRel *Relation, opts DiscoverLoopOptions) (*DiscoverResult, error) {
	return discover.Loop(r, masterRel, opts)
}

// Score compares a repaired tuple against its ground truth, crediting
// only the given positions as machine changes (pass nil to credit all) —
// the evaluation measures of §6.
func Score(input, truth, repaired Tuple, credited *AttrSet) (precision, recall, f1 float64) {
	o := metrics.CompareCells(input, truth, repaired, credited)
	return o.Precision(), o.Recall(), o.F1()
}
