package certainfix

import (
	"repro/internal/discover"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/relation"
)

// Session is the internal step-wise session type.
//
// Deprecated: use FixSession via System.Begin, which adds context
// awareness and serialization (suspend/resume across processes).
type Session = monitor.Session

// NewSession starts a step-wise fixing session for one tuple.
//
// Deprecated: use System.Begin.
func (s *System) NewSession(t Tuple) (*Session, error) {
	return s.mon.NewSession(t)
}

// RepairRelation applies RepairOnce to every tuple of a relation,
// trusting the given attribute positions on each, and returns a new
// relation with the repaired tuples plus the total number of cells the
// rules fixed. Tuples whose validated values expose rule conflicts are
// copied unchanged (certainty first); their indexes are returned.
func (s *System) RepairRelation(rel *Relation, validated []int) (*Relation, int, []int, error) {
	out := relation.NewRelation(rel.Schema())
	totalFixed := 0
	var conflicted []int
	for i := 0; i < rel.Len(); i++ {
		fixed, _, changed, err := s.RepairOnce(rel.Tuple(i), validated)
		if err != nil {
			conflicted = append(conflicted, i)
			fixed = rel.Tuple(i).Clone()
		}
		totalFixed += len(changed)
		if err := out.Append(fixed); err != nil {
			return nil, 0, nil, err
		}
	}
	return out, totalFixed, conflicted, nil
}

// DiscoverOptions tunes rule mining; see DiscoverRules.
type DiscoverOptions = discover.Options

// MinedDependency is one mined functional dependency with its evidence.
type MinedDependency = discover.Candidate

// DiscoverRules mines editing rules from a master relation whose schema
// aligns positionally with the input schema r — the §7 future-work
// direction of the paper ("discovering editing rules from sample inputs
// and master data"). The mined rules feed directly into New.
func DiscoverRules(r *Schema, masterRel *Relation, opts DiscoverOptions) (*Rules, []MinedDependency, error) {
	return discover.Rules(r, masterRel, opts)
}

// Score compares a repaired tuple against its ground truth, crediting
// only the given positions as machine changes (pass nil to credit all) —
// the evaluation measures of §6.
func Score(input, truth, repaired Tuple, credited *AttrSet) (precision, recall, f1 float64) {
	o := metrics.CompareCells(input, truth, repaired, credited)
	return o.Precision(), o.Recall(), o.F1()
}
