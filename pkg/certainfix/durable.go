package certainfix

// Durable master lineage: the WithWAL face of the public API. Without it
// the snapshot chain — every UpdateMaster since boot, and the epochs
// suspended sessions are pinned to — is process memory, and a restart
// silently rewinds the master to its construction state, breaking the
// certain-fix guarantee's premise of a known Dm. With it the chain lives
// in a directory: a write-ahead log of deltas plus periodic arena
// checkpoints, recovered on construction (see internal/master's
// DurableVersioned and DESIGN.md, "Durability: WAL + checkpoints").

import (
	"repro/internal/master"
	"repro/internal/monitor"
	"repro/internal/wal"
)

// FsyncPolicy selects when the write-ahead log fsyncs (see WithFsync).
type FsyncPolicy = wal.SyncPolicy

// WAL fsync policies.
const (
	// FsyncAlways syncs after every UpdateMaster: an update that
	// returned is durable. The default under WithWAL.
	FsyncAlways = wal.SyncAlways
	// FsyncInterval syncs on a background timer: a crash loses at most
	// the updates since the last tick.
	FsyncInterval = wal.SyncInterval
	// FsyncOff never syncs explicitly; the OS flushes when it pleases.
	FsyncOff = wal.SyncNever
)

// ParseFsyncPolicy parses the flag spelling of a policy: "always",
// "interval" or "off".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// DurabilityStats is the durability state of a System built WithWAL:
// head and checkpoint epochs, log shape, and what recovery found on
// startup. cmd/certainfixd exposes it on /healthz.
type DurabilityStats = master.DurabilityStats

// newDurableSystem opens (or recovers) the durable lineage at
// cfg.WALDir, building the base snapshot with base only when the
// directory holds no checkpoint yet.
func newDurableSystem(rules *Rules, base func() (*master.Data, error), cfg Options) (*System, error) {
	dur, err := master.OpenDurable(cfg.WALDir, base, rules, master.DurableOptions{
		Sync:            cfg.Fsync,
		CheckpointEvery: cfg.CheckpointEvery,
		History:         cfg.MasterHistory,
		Auth:            cfg.Auth,
	})
	if err != nil {
		return nil, err
	}
	mon, err := monitor.NewVersioned(rules, dur.Versioned(), monitor.Config{
		UseBDD:        cfg.UseSuggestionCache,
		InitialRegion: cfg.InitialRegion,
		MaxRounds:     cfg.MaxRounds,
	})
	if err != nil {
		dur.Close()
		return nil, err
	}
	return &System{
		sigma: rules,
		ver:   dur.Versioned(),
		mon:   mon,
		dur:   dur,
	}, nil
}

// Durability reports the durability state of a System built WithWAL; ok
// is false for a memory-only System.
func (s *System) Durability() (stats DurabilityStats, ok bool) {
	if s.dur == nil {
		return DurabilityStats{}, false
	}
	return s.dur.Durability(), true
}

// Checkpoint forces an arena checkpoint of the current master head and
// truncates the write-ahead log it covers. It is a no-op without
// WithWAL. Routine operation does not need it — checkpoints roll
// automatically every WithCheckpointEvery deltas — but it is useful
// before backups or to bound recovery time explicitly.
func (s *System) Checkpoint() error {
	if s.dur == nil {
		return nil
	}
	return s.dur.Checkpoint()
}

// Close flushes and closes the write-ahead log, and on a follower
// System stops the shipping loop. In-flight reads and sessions keep
// working against their pinned snapshots; further UpdateMaster calls
// fail. A memory-only System (no WithWAL) has nothing to release and
// Close is a no-op. Safe to call more than once.
func (s *System) Close() error {
	if s.rep != nil {
		s.rep.stop()
	}
	if s.dur == nil {
		return nil
	}
	return s.dur.Close()
}
