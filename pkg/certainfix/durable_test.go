package certainfix_test

// The WithWAL surface: a System's master lineage survives a restart —
// epochs, tuples, fix behaviour, and suspended session tokens — and
// corruption surfaces as the re-exported typed errors.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/paperex"
	"repro/pkg/certainfix"
)

// durableFixture builds the order/catalog system of update_test.go on a
// durable lineage rooted at dir.
func durableFixture(t *testing.T, dir string, withMaster bool, opts ...certainfix.Option) *certainfix.System {
	t.Helper()
	r := certainfix.StringSchema("order", "sku", "price", "desc")
	rm := certainfix.StringSchema("catalog", "sku", "price", "desc")
	rules, err := certainfix.ParseRules(r, rm, `
rule price: (sku ; sku) -> (price ; price)
rule desc:  (sku ; sku) -> (desc ; desc)
`)
	if err != nil {
		t.Fatal(err)
	}
	var masterRel *certainfix.Relation
	if withMaster {
		masterRel = certainfix.NewRelation(rm)
		if err := masterRel.Append(certainfix.StringTuple("sku-1", "9.99", "widget")); err != nil {
			t.Fatal(err)
		}
	}
	sys, err := certainfix.New(rules, masterRel, append([]certainfix.Option{certainfix.WithWAL(dir)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestWALLineageSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	sys := durableFixture(t, dir, true)
	for i := 2; i <= 6; i++ {
		sku := fmt.Sprintf("sku-%d", i)
		if _, err := sys.UpdateMaster([]certainfix.Tuple{
			certainfix.StringTuple(sku, fmt.Sprintf("%d.50", i), "item-"+sku),
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	wantEpoch, wantLen := sys.MasterEpoch(), sys.MasterLen()
	if st, ok := sys.Durability(); !ok || st.Epoch != wantEpoch {
		t.Fatalf("durability stats: %+v ok=%v", st, ok)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	// Closed lineage refuses further updates; reads keep working.
	if _, err := sys.UpdateMaster(nil, []int{0}); err == nil {
		t.Fatal("UpdateMaster after Close succeeded")
	}
	if sys.MasterLen() != wantLen {
		t.Fatal("reads broke after Close")
	}

	// Restart with NO master relation: the WAL directory is authoritative.
	sys2 := durableFixture(t, dir, false)
	defer sys2.Close()
	if sys2.MasterEpoch() != wantEpoch || sys2.MasterLen() != wantLen {
		t.Fatalf("recovered epoch %d |Dm| %d, want %d and %d",
			sys2.MasterEpoch(), sys2.MasterLen(), wantEpoch, wantLen)
	}
	st, ok := sys2.Durability()
	if !ok || !st.Recovery.UsedCheckpoint {
		t.Fatalf("recovery did not use the checkpoint: %+v", st)
	}
	// The recovered master actually serves fixes for a replayed tuple.
	fixed, _, changed, err := sys2.RepairOnce(certainfix.StringTuple("sku-4", "0.00", "junk"), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 2 || fixed[1].Str() != "4.50" {
		t.Fatalf("recovered master repaired %v -> %v", changed, fixed)
	}
	// And the lineage continues past the restart.
	if epoch, err := sys2.UpdateMaster(nil, []int{0}); err != nil || epoch != wantEpoch+1 {
		t.Fatalf("continue after restart: epoch %d err %v", epoch, err)
	}
}

// TestWALFreshDirWithoutMaster pins the error contract: an empty WAL
// directory plus a nil master relation cannot seed a lineage.
func TestWALFreshDirWithoutMaster(t *testing.T) {
	r := certainfix.StringSchema("order", "sku", "price")
	rm := certainfix.StringSchema("catalog", "sku", "price")
	rules, err := certainfix.ParseRules(r, rm, `rule s: (sku ; sku) -> (price ; price)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := certainfix.New(rules, nil, certainfix.WithWAL(t.TempDir())); err == nil {
		t.Fatal("New with neither master nor checkpoint succeeded")
	}
}

// TestSessionTokenSpansRestart is satellite coverage for the ring under
// recovery: a session suspended before a restart resumes in the NEXT
// process, re-pins its original epoch (recovered from checkpoint+WAL),
// and finishes with the same result as an uninterrupted run.
func TestSessionTokenSpansRestart(t *testing.T) {
	dir := t.TempDir()
	truth := truthT2()
	sysA, err := certainfix.New(paperex.Sigma0(), paperex.MasterRelation(), certainfix.WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	want, err := sysA.Fix(paperex.InputT2(), certainfix.SimulatedUser{Truth: truth})
	if err != nil {
		t.Fatal(err)
	}

	sess, err := sysA.Begin(context.Background(), paperex.InputT2())
	if err != nil {
		t.Fatal(err)
	}
	provideRound(t, sess, truth)
	token, err := sess.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// The master moves on while the session is suspended.
	if _, err := sysA.UpdateMaster([]certainfix.Tuple{paperex.MasterRelation().Tuple(0).Clone()}, nil); err != nil {
		t.Fatal(err)
	}
	if err := sysA.Close(); err != nil {
		t.Fatal(err)
	}

	// "Next process": recovered entirely from the WAL directory.
	sysB, err := certainfix.New(paperex.Sigma0(), nil, certainfix.WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer sysB.Close()
	resumed, err := sysB.Resume(context.Background(), token)
	if err != nil {
		t.Fatalf("resume across restart: %v", err)
	}
	got := driveToEnd(t, resumed, truth)
	if canonical(t, got) != canonical(t, want) {
		t.Fatalf("post-restart resume diverged:\n got  %s\n want %s",
			canonical(t, got), canonical(t, want))
	}
}

// TestResumeEpochBehindCheckpoint: when checkpoints advance past a
// suspended session's epoch, the restarted ring cannot re-pin it — the
// typed ErrEpochEvicted surfaces, and RebaseToHead remains the escape
// hatch.
func TestResumeEpochBehindCheckpoint(t *testing.T) {
	dir := t.TempDir()
	truth := truthT2()
	sysA, err := certainfix.New(paperex.Sigma0(), paperex.MasterRelation(),
		certainfix.WithWAL(dir), certainfix.WithCheckpointEvery(2))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sysA.Begin(context.Background(), paperex.InputT2())
	if err != nil {
		t.Fatal(err)
	}
	provideRound(t, sess, truth)
	token, err := sess.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Four deltas with CheckpointEvery=2: the checkpoint lands past the
	// session's pinned epoch 0.
	for i := 0; i < 4; i++ {
		if _, err := sysA.UpdateMaster([]certainfix.Tuple{paperex.MasterRelation().Tuple(i % 2).Clone()}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if st, _ := sysA.Durability(); st.CheckpointEpoch == 0 {
		t.Fatalf("fixture broken: no checkpoint advanced past epoch 0: %+v", st)
	}
	sysA.Close()

	sysB, err := certainfix.New(paperex.Sigma0(), nil, certainfix.WithWAL(dir), certainfix.WithCheckpointEvery(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sysB.Close()
	if _, err := sysB.Resume(context.Background(), token); !errors.Is(err, certainfix.ErrEpochEvicted) {
		t.Fatalf("want ErrEpochEvicted, got %v", err)
	}
	resumed, err := sysB.Resume(context.Background(), token, certainfix.RebaseToHead())
	if err != nil {
		t.Fatalf("rebase to head: %v", err)
	}
	if resumed.Done() {
		t.Fatal("rebased session finished prematurely")
	}
}

func TestWALCorruptionTypedAtAPI(t *testing.T) {
	dir := t.TempDir()
	sys := durableFixture(t, dir, true, certainfix.WithCheckpointEvery(-1))
	for i := 0; i < 4; i++ {
		if _, err := sys.UpdateMaster([]certainfix.Tuple{
			certainfix.StringTuple(fmt.Sprintf("sku-c%d", i), "1.00", "x"),
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	sys.Close()
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments (err %v)", err)
	}
	// Fabricate unrecoverable corruption: duplicate the segment under a
	// higher start epoch. Its frames are CRC-valid but the epochs inside
	// cannot belong there — exactly the case recovery must refuse to
	// repair (truncating would silently drop acknowledged records).
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	bogus := filepath.Join(dir, "00000000000000000099.wal")
	if err := os.WriteFile(bogus, b, 0o644); err != nil {
		t.Fatal(err)
	}

	r := certainfix.StringSchema("order", "sku", "price", "desc")
	rm := certainfix.StringSchema("catalog", "sku", "price", "desc")
	rules, err := certainfix.ParseRules(r, rm, `
rule price: (sku ; sku) -> (price ; price)
rule desc:  (sku ; sku) -> (desc ; desc)
`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = certainfix.New(rules, nil, certainfix.WithWAL(dir))
	if !errors.Is(err, certainfix.ErrWALCorrupt) {
		t.Fatalf("want ErrWALCorrupt, got %v", err)
	}
	var ce *certainfix.WALCorruptError
	if !errors.As(err, &ce) || ce.Path != bogus {
		t.Fatalf("want *WALCorruptError locating %s, got %#v", bogus, err)
	}
}
