package certainfix

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/monitor"
)

// SessionState is the serializable image of a fix session — everything
// the round loop reads or writes, plus the pinned master epoch. Its JSON
// form is the session token of the stateless-server pattern: values map
// to native JSON (null / string / integer) and attribute sets to sorted
// position lists, so non-Go clients can inspect and store it.
//
// Tokens carry no authentication. A service handing them to untrusted
// clients must sign or MAC them: the state asserts which attributes are
// already "user validated".
type SessionState = monitor.SessionState

// FixSession is a first-class, resumable fixing session for one tuple —
// the interactive state machine of §5 (Fig. 2/3) with its user
// interaction turned inside out: instead of supplying a callback, the
// caller asks for Suggested attributes, gathers answers at its own pace
// (a form, a queue, a network round-trip that completes minutes later),
// and feeds them back through Provide.
//
//	sess, _ := sys.Begin(ctx, dirty)
//	for !sess.Done() {
//	    attrs := sess.Suggested()
//	    // ... ask the users about attrs; possibly suspend here:
//	    // token, _ := sess.MarshalBinary() → client; later:
//	    // sess, _ = sys.Resume(ctx, token)
//	    if err := sess.Provide(attrs, values); err != nil { ... }
//	}
//	res := sess.Result()
//
// A session pins the master snapshot current at Begin for its whole
// lifetime (including across suspend/resume while the epoch is
// retained), so concurrent UpdateMaster publishes never make rounds of
// one session disagree about Dm. Sessions are not safe for concurrent
// use; one session belongs to one interaction flow.
type FixSession struct {
	ctx  context.Context
	sess *monitor.Session
}

// Begin starts a resumable fix session for one input tuple (copied, not
// mutated). The context governs the session's subsequent calls: Provide
// fails with the context's error once it is done. A nil ctx means
// context.Background().
func (s *System) Begin(ctx context.Context, t Tuple) (*FixSession, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sess, err := s.mon.NewSession(t)
	if err != nil {
		return nil, err
	}
	return &FixSession{ctx: ctx, sess: sess}, nil
}

// ResumeOption tunes Resume.
type ResumeOption interface {
	applyResume(*monitor.ResumeOptions)
}

type resumeOptionFunc func(*monitor.ResumeOptions)

func (f resumeOptionFunc) applyResume(o *monitor.ResumeOptions) { f(o) }

// RebaseToHead lets Resume re-pin the currently published master
// snapshot when the token's original epoch has been evicted from the
// snapshot ring. The resumed rounds then run against newer master data:
// every remaining suggestion and cascade is computed against the head,
// so the fix stays certain with respect to it, but the session loses the
// single-epoch guarantee and may interact differently than the
// uninterrupted run would have.
func RebaseToHead() ResumeOption {
	return resumeOptionFunc(func(o *monitor.ResumeOptions) { o.RebaseToHead = true })
}

// Resume rebuilds a live session from a token produced by MarshalBinary
// — in this process or another one, as long as the System was built over
// the same rules and master lineage. The token's pinned epoch is
// re-pinned from the snapshot ring; if it has been evicted the resume
// fails with ErrEpochEvicted unless RebaseToHead is given. Malformed
// tokens fail with ErrBadToken.
func (s *System) Resume(ctx context.Context, token []byte, opts ...ResumeOption) (*FixSession, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var st monitor.SessionState
	if err := json.Unmarshal(token, &st); err != nil {
		return nil, fmt.Errorf("certainfix: parse session token: %w (%w)", err, ErrBadToken)
	}
	return s.ResumeState(ctx, &st, opts...)
}

// ResumeState is Resume for callers that already hold a decoded
// SessionState (an HTTP handler embedding the token as a JSON object,
// for example).
func (s *System) ResumeState(ctx context.Context, st *SessionState, opts ...ResumeOption) (*FixSession, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var ro monitor.ResumeOptions
	for _, o := range opts {
		o.applyResume(&ro)
	}
	sess, err := s.mon.ResumeSession(st, ro)
	if err != nil {
		return nil, err
	}
	return &FixSession{ctx: ctx, sess: sess}, nil
}

// Suggested returns the attribute positions the users should assert this
// round (a copy; empty once the session is done).
func (fs *FixSession) Suggested() []int { return fs.sess.Suggested() }

// Provide runs one round: the users assert t[attrs] = values (aligned
// slices; attrs may differ from Suggested — §5's "S may not necessarily
// be the same as sug"). Providing no attributes aborts the session:
// Done becomes true with Result().Completed false. Fails with the
// context's error when the session's context is done, ErrSessionDone
// after the session finished, ErrArityMismatch on misaligned input, and
// surfaces *ConflictError (matching ErrInconsistent) only through the
// suggestion flow — conflicts are routed back to the users, never
// guessed at.
func (fs *FixSession) Provide(attrs []int, values []Value) error {
	if err := fs.ctx.Err(); err != nil {
		return err
	}
	return fs.sess.Provide(attrs, values)
}

// Done reports whether the session finished (all attributes validated,
// the round cap hit, or the users declined).
func (fs *FixSession) Done() bool { return fs.sess.Done() }

// Completed reports whether every attribute is validated (Done can also
// mean the cap was hit or the users declined).
func (fs *FixSession) Completed() bool { return fs.sess.Completed() }

// Rounds returns the interaction rounds consumed so far.
func (fs *FixSession) Rounds() int { return fs.sess.Rounds() }

// Tuple returns the current working tuple (copy).
func (fs *FixSession) Tuple() Tuple { return fs.sess.Tuple() }

// Validated returns the currently validated attribute set (copy).
func (fs *FixSession) Validated() AttrSet { return fs.sess.Validated() }

// Epoch returns the pinned master epoch — the epoch Resume will try to
// re-pin.
func (fs *FixSession) Epoch() uint64 { return fs.sess.Epoch() }

// Root returns the hex Merkle root of the pinned master snapshot, empty
// without WithAuth. Clients record it alongside the token: the proofs in
// Result().Provenance verify against exactly this root (VerifyFix).
func (fs *FixSession) Root() string { return fs.sess.Root() }

// Result summarizes the session so far (or finally, once Done).
func (fs *FixSession) Result() Result { return fs.sess.Result() }

// State captures the session's serializable state. The result shares no
// mutable storage with the session.
func (fs *FixSession) State() *SessionState { return fs.sess.State() }

// MarshalBinary implements encoding.BinaryMarshaler: the session token,
// a JSON encoding of State suitable for Resume in another process.
func (fs *FixSession) MarshalBinary() ([]byte, error) {
	return json.Marshal(fs.sess.State())
}
