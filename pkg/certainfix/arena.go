package certainfix

// Columnar master snapshots: the cold-start path of the public API. A
// System built once can freeze its master snapshot — tuples, interning
// table, hash indexes, posting lists and pattern-support bitmaps — into a
// single flat arena file; a later process loads the file by mapping it
// into memory and wrapping the bytes in read-only index views, instead of
// re-interning and re-hashing |Dm| tuples. Fix results are byte-identical
// either way; only startup cost changes (see DESIGN.md, "Columnar arena
// format").

import (
	"repro/internal/master"
	"repro/internal/monitor"
)

// ErrBadSnapshot reports an arena image that failed validation: wrong
// magic, truncated or corrupt sections, or a snapshot saved for a
// different Σ. Concrete failures are *SnapshotError values; errors.Is
// matches them against this sentinel.
var ErrBadSnapshot = master.ErrBadSnapshot

// SnapshotError locates an arena validation failure (section and byte
// offset). Retrieve it with errors.As; it matches ErrBadSnapshot under
// errors.Is.
type SnapshotError = master.SnapshotError

// MasterMemStats is the memory accounting of a master snapshot: where the
// lookup structures live (Go heap versus a loaded arena image) and how big
// they are. cmd/certainfixd exposes it on /healthz.
type MasterMemStats = master.MemStats

// NewFromArena builds a System whose initial master snapshot is loaded
// from an arena image saved by SaveMasterArena. rules must be equivalent
// to the Σ the image was saved for (same master schema, same rules in the
// same order) — validated against per-rule signatures in the image.
//
// WithShards is ignored here: the shard layout is frozen into the image.
// Every other option applies as in New. UpdateMaster works unchanged on
// the loaded system; deltas land in copy-on-write overlays above the
// read-only arena. Under WithWAL the arena seeds the lineage only on the
// first open of the WAL directory — afterwards the directory's own
// checkpoint and log are authoritative, as in New.
func NewFromArena(rules *Rules, arenaPath string, opts ...Option) (*System, error) {
	var cfg Options
	for _, o := range opts {
		o.apply(&cfg)
	}
	if cfg.WALDir != "" {
		return newDurableSystem(rules, func() (*master.Data, error) {
			return master.LoadArena(arenaPath, rules)
		}, cfg)
	}
	dm, err := master.LoadArena(arenaPath, rules)
	if err != nil {
		return nil, err
	}
	if cfg.Auth {
		// No-op when the image was saved authenticated (the loader verified
		// its root); builds the commitment for pre-auth images.
		dm.Authenticate()
	}
	ver := master.NewVersioned(dm)
	if cfg.MasterHistory > 0 {
		ver.SetHistory(cfg.MasterHistory)
	}
	mon, err := monitor.NewVersioned(rules, ver, monitor.Config{
		UseBDD:        cfg.UseSuggestionCache,
		InitialRegion: cfg.InitialRegion,
		MaxRounds:     cfg.MaxRounds,
	})
	if err != nil {
		return nil, err
	}
	return &System{
		sigma: rules,
		ver:   ver,
		mon:   mon,
	}, nil
}

// SaveMasterArena freezes the currently published master snapshot into an
// arena image at path (written to a temporary file in the same directory
// and renamed, so a crash never leaves a partial image under path). The
// image captures the snapshot as of this call; later UpdateMaster
// publishes are not reflected until it is saved again.
func (s *System) SaveMasterArena(path string) error {
	return s.ver.Current().SaveArenaFile(path, s.sigma)
}

// MasterMemStats returns the memory accounting of the currently published
// master snapshot.
func (s *System) MasterMemStats() MasterMemStats {
	return s.ver.Current().MemStats()
}
