package certainfix

// Option configures a System at construction. Options are applied in the
// order given to New, later ones overriding earlier ones.
//
//	sys, err := certainfix.New(rules, masterRel,
//	    certainfix.WithSuggestionCache(),
//	    certainfix.WithMaxRounds(4))
type Option interface {
	apply(*Options)
}

// optionFunc adapts a function to the Option interface.
type optionFunc func(*Options)

func (f optionFunc) apply(o *Options) { f(o) }

// Options configures a System as one struct.
//
// Deprecated: pass functional options (WithSuggestionCache, WithMaxRounds,
// ...) to New instead. Options is retained as a compatibility shim — it
// implements Option, so existing New(rules, master, Options{...}) calls
// keep compiling — but note that applying an Options value overwrites
// every field set by options before it in the argument list.
type Options struct {
	// UseSuggestionCache enables CertainFix+ (the BDD cache of §5.2),
	// which amortizes suggestion computation across a stream of tuples.
	UseSuggestionCache bool
	// InitialRegion selects the precomputed certain region seeding the
	// first suggestion (0 = highest quality).
	InitialRegion int
	// MaxRounds caps user-interaction rounds per tuple (0 = arity + 1).
	MaxRounds int
	// MasterHistory bounds how many recent master snapshots the system
	// retains for session resume (0 = master.DefaultHistory). A resumed
	// session re-pins its original epoch only while that epoch is
	// retained; see System.Resume.
	MasterHistory int
	// Shards partitions the master indexes into that many hash shards,
	// built in parallel (0 = one per CPU; see WithShards).
	Shards int
	// WALDir enables durable master lineage: every UpdateMaster is
	// written to a write-ahead log in this directory before it becomes
	// visible, periodic arena checkpoints bound the log, and New recovers
	// the lineage from the directory on startup (see WithWAL).
	WALDir string
	// Fsync is the WAL fsync policy when WALDir is set (default
	// FsyncAlways: an UpdateMaster that returned survives a crash).
	Fsync FsyncPolicy
	// CheckpointEvery is how many deltas accumulate between automatic
	// arena checkpoints when WALDir is set (0 = the master package
	// default; < 0 disables automatic checkpoints).
	CheckpointEvery int
	// Auth maintains a Merkle commitment over the master data: snapshots
	// expose a root, WAL records and checkpoints carry it, fix results
	// include per-attribute inclusion proofs, and followers audit every
	// shipped epoch against the leader's root (see WithAuth).
	Auth bool
}

// apply implements Option: the whole struct replaces the accumulated
// configuration (the historical semantics of the Options parameter).
func (o Options) apply(dst *Options) { *dst = o }

// WithSuggestionCache enables CertainFix+ (the shared BDD suggestion
// cache of §5.2). Note the determinism caveat on FixBatch, and the
// cold-restart caveat on Resume: a resumed session re-enters the cache
// at the root.
func WithSuggestionCache() Option {
	return optionFunc(func(o *Options) { o.UseSuggestionCache = true })
}

// WithInitialRegion selects which precomputed certain region seeds the
// first suggestion (0 = highest quality; out-of-range clamps to the
// lowest-quality candidate).
func WithInitialRegion(i int) Option {
	return optionFunc(func(o *Options) { o.InitialRegion = i })
}

// WithMaxRounds caps user-interaction rounds per tuple (n <= 0 restores
// the default, arity + 1). The cap is captured into each session's
// serialized state, so a resumed session keeps the cap it began with.
func WithMaxRounds(n int) Option {
	return optionFunc(func(o *Options) { o.MaxRounds = n })
}

// WithMasterHistory bounds the master snapshot ring to n epochs
// including the head (n <= 0 restores master.DefaultHistory; the head is
// always retained). Larger rings let sessions stay suspended across more
// UpdateMaster publishes before resume falls back to ErrEpochEvicted /
// RebaseToHead; retained snapshots share storage copy-on-write, so the
// cost per epoch is the delta overlays, not a copy of Dm.
func WithMasterHistory(n int) Option {
	return optionFunc(func(o *Options) { o.MasterHistory = n })
}

// WithWAL makes the master lineage durable, rooted at dir. Every
// UpdateMaster is appended to a segmented, CRC-framed write-ahead log
// before the new snapshot is published; every few deltas the head is
// checkpointed as an arena image and the covered log truncated; and when
// dir already holds state, New/NewFromArena recover from it — checkpoint
// plus log tail — instead of building from the given master relation,
// continuing the epoch lineage exactly where the previous process (clean
// shutdown or crash) left it. A torn log tail from a crash is repaired
// silently; real corruption fails construction with ErrWALCorrupt or
// ErrBadSnapshot. Call System.Close to flush the log on shutdown.
func WithWAL(dir string) Option {
	return optionFunc(func(o *Options) { o.WALDir = dir })
}

// WithFsync selects the WAL durability/latency trade (only meaningful
// with WithWAL): FsyncAlways syncs per UpdateMaster, FsyncInterval syncs
// on a background timer, FsyncOff leaves flushing to the OS.
func WithFsync(p FsyncPolicy) Option {
	return optionFunc(func(o *Options) { o.Fsync = p })
}

// WithCheckpointEvery sets how many deltas accumulate between automatic
// arena checkpoints under WithWAL (n == 0 restores the default; n < 0
// disables automatic checkpoints — the log then grows until
// System.Close or an explicit save).
func WithCheckpointEvery(n int) Option {
	return optionFunc(func(o *Options) { o.CheckpointEvery = n })
}

// WithAuth turns on authenticated master epochs: the system maintains a
// sparse-Merkle commitment over Dm's tuple multiset, incrementally across
// UpdateMaster. The root is a pure function of the master contents —
// identical across shard counts, delta orderings and processes — and it
// travels with the lineage: MasterRoot exposes it, arena checkpoints
// persist it (verified on load), WAL records carry the root each delta
// produces (verified on recovery), and a follower compares its own root
// against the leader's after every shipped epoch. Fix results gain
// per-attribute provenance with inclusion proofs; VerifyFix checks them
// against a published root with no access to the master data at all.
// Costs one tree build at New and O(delta·log|Dm|) hashing per
// UpdateMaster; off by default.
func WithAuth() Option {
	return optionFunc(func(o *Options) { o.Auth = true })
}

// WithShards partitions the master data's indexes, posting lists and
// copy-on-write overlays into p hash shards, built in parallel at New
// time and maintained shard-locally by UpdateMaster (p <= 0 restores the
// default, one shard per CPU; p is clamped to the master package's
// MaxShards). The shard count is invisible to results — probe answers
// and fixes are byte-identical for every p — it trades a few empty map
// probes per lookup for parallel builds and shard-local maintenance on
// multi-million-tuple masters.
func WithShards(p int) Option {
	return optionFunc(func(o *Options) { o.Shards = p })
}
